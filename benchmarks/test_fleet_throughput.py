"""FLEET-THR: fleet-stacked execution plane vs the per-device respond path.

The acceptance bars for the fleet-stacked engine (see README / CI):

* >= 5x authentication-round throughput at 256 devices over the
  per-device respond path (each device running its own batch-1 compiled
  interrogation), with rtol 1e-9 numerical agreement between the two
  paths' slot energies;
* one-shot fleet provisioning (single stacked compile + stacked
  harvests) >= 3x faster than per-die compilation.

The per-device baselines are measured on a smaller slice and scaled —
both the respond path and per-die provisioning are linear in fleet size
by construction (one independent compile/propagate per device).

Results are recorded in ``BENCH_fleet.json`` so CI can gate on the
speedup floor (``FLEET_SPEEDUP_FLOOR`` / ``FLEET_PROVISION_FLOOR``
environment overrides let the CI lane run a noise-tolerant floor).
"""

import json
import os
import time

import numpy as np
import pytest

from bench_facade_bridge import provision_fleet

FLEET = int(os.environ.get("FLEET_BENCH_SIZE", "256"))
BASELINE_SLICE = max(8, FLEET // 4)
ROUND_FLOOR = float(os.environ.get("FLEET_SPEEDUP_FLOOR", "5.0"))
PROVISION_FLOOR = float(os.environ.get("FLEET_PROVISION_FLOOR", "3.0"))
# Round-throughput floor an alternate JIT backend must clear over the
# numpy plane (the 1024-device 1.5x acceptance bar; CI overrides).
BACKEND_FLOOR = float(os.environ.get("FLEET_BACKEND_FLOOR", "1.5"))
FLEET_JSON = "BENCH_fleet.json"
RTOL = 1e-9

CONFIG = dict(challenge_bits=64, n_stages=12, response_bits=32,
              n_spot_crps=64)

_results = {}


def _record(**kwargs) -> None:
    _results.update({k: (float(f"{v:.4g}") if isinstance(v, float) else v)
                     for k, v in kwargs.items()})
    payload = dict(sorted(_results.items()))
    payload["fleet_size"] = FLEET
    # The compute backend the headline numbers were measured on; the
    # per-backend sweep lands its own records under "backends".
    payload.setdefault("backend", "numpy")
    with open(FLEET_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def stacked_fleet():
    return provision_fleet(FLEET, seed=1103, stacked=True, **CONFIG)


def test_fleet_provisioning_one_shot(table_printer):
    start = time.perf_counter()
    provision_fleet(FLEET, seed=2207, stacked=True, **CONFIG)
    stacked_s = time.perf_counter() - start
    # Per-die compilation baseline, measured on a slice and scaled (one
    # independent compile + harvest per device; linear by construction).
    start = time.perf_counter()
    provision_fleet(BASELINE_SLICE, seed=2207, stacked=False, **CONFIG)
    per_die_s = (time.perf_counter() - start) * (FLEET / BASELINE_SLICE)
    ratio = per_die_s / stacked_s
    table_printer(
        f"FLEET-THR — one-shot provisioning ({FLEET} dies, "
        f"{CONFIG['n_spot_crps']} spot CRPs each)",
        ["path", "wall time", "dies/s", "speedup"],
        [
            ("per-die compilation", f"{per_die_s:.2f} s",
             f"{FLEET / per_die_s:.1f}", "1.0x"),
            ("fleet-stacked compile", f"{stacked_s:.2f} s",
             f"{FLEET / stacked_s:.1f}", f"{ratio:.1f}x"),
        ],
    )
    _record(provision_stacked_s=stacked_s, provision_per_die_s=per_die_s,
            provision_speedup=ratio)
    assert ratio >= PROVISION_FLOOR, (
        f"one-shot fleet provisioning is only {ratio:.1f}x faster than "
        f"per-die compilation (floor {PROVISION_FLOOR}x)"
    )


def test_fleet_round_throughput(table_printer, stacked_fleet):
    registry, devices, verifier = stacked_fleet
    verifier.authenticate_fleet(devices)  # warm kernels + MAC states

    def stacked_round():
        report = verifier.authenticate_fleet(devices)
        assert report.n_accepted == FLEET

    stacked_s = _best_of(stacked_round, repeats=3)

    # Per-device respond path: an identically provisioned (but smaller)
    # fleet with the stacked plane detached, scaled to FLEET devices.
    __, baseline_devices, baseline_verifier = provision_fleet(
        BASELINE_SLICE, seed=1103, stacked=True, **CONFIG
    )
    for device in baseline_devices:
        device.detach_plane()
    baseline_verifier.authenticate_fleet(baseline_devices)  # warm caches

    def per_device_round():
        report = baseline_verifier.authenticate_fleet(baseline_devices)
        assert report.n_accepted == BASELINE_SLICE

    per_device_s = _best_of(per_device_round, repeats=3) \
        * (FLEET / BASELINE_SLICE)
    speedup = per_device_s / stacked_s
    table_printer(
        f"FLEET-THR — authentication rounds ({FLEET} devices)",
        ["path", "round time", "auths/s", "speedup"],
        [
            ("per-device respond", f"{per_device_s * 1e3:.0f} ms",
             f"{FLEET / per_device_s:.0f}", "1.0x"),
            ("fleet-stacked plane", f"{stacked_s * 1e3:.0f} ms",
             f"{FLEET / stacked_s:.0f}", f"{speedup:.1f}x"),
        ],
    )
    _record(round_stacked_s=stacked_s, round_per_device_s=per_device_s,
            round_speedup=speedup,
            auths_per_sec_stacked=FLEET / stacked_s)
    assert speedup >= ROUND_FLOOR, (
        f"fleet-stacked rounds are only {speedup:.1f}x faster than the "
        f"per-device respond path (floor {ROUND_FLOOR}x)"
    )


def test_fleet_stacked_equivalence(table_printer, stacked_fleet):
    """rtol 1e-9 agreement between the stacked and per-device paths."""
    __, devices, __ = stacked_fleet
    plane = devices[0].plane
    sample = list(range(0, FLEET, max(1, FLEET // 16)))
    rng = np.random.default_rng(5)
    challenges = rng.integers(
        0, 2, size=(len(sample), 3, CONFIG["challenge_bits"]), dtype=np.uint8
    )
    stacked = plane.slot_energies(challenges, measurements=0, dies=sample)
    worst = 0.0
    for position, die in enumerate(sample):
        per_device = devices[die].puf.slot_energies_batch(
            challenges[position], measurement=0, compiled=True
        )
        np.testing.assert_allclose(stacked[position], per_device,
                                   rtol=RTOL, atol=1e-12)
        scale = np.max(np.abs(per_device))
        worst = max(worst, float(
            np.max(np.abs(stacked[position] - per_device)) / scale
        ))
    # Response bits from the trimmed bit-slot path agree exactly.
    bits = plane.evaluate(challenges, measurements=0, dies=sample)
    for position, die in enumerate(sample):
        per_device = devices[die].puf.evaluate_batch(
            challenges[position], measurement=0, compiled=True
        )
        assert np.array_equal(bits[position], per_device)
    table_printer(
        "FLEET-THR — stacked vs per-device numerical agreement",
        ["check", "value"],
        [
            ("dies sampled", len(sample)),
            ("max relative energy deviation", f"{worst:.2e}"),
            ("response-bit agreement", "exact"),
        ],
    )
    _record(equivalence_max_rel_err=worst)
    assert worst < RTOL


def test_fleet_backend_sweep(table_printer, stacked_fleet):
    """Round throughput per available compute backend, bits pinned.

    Every available backend runs the same seeded fleet: response bits
    must match the numpy plane exactly (the transcript-level contract),
    and a JIT backend (numba) must clear ``BACKEND_FLOOR`` x numpy round
    throughput.  With only numpy installed this records the reference
    row and the floor assert does not bind.
    """
    from repro.photonics.backend import available_backend_names

    __, baseline_devices, __ = stacked_fleet
    rng = np.random.default_rng(17)
    challenges = rng.integers(
        0, 2, size=(FLEET, 2, CONFIG["challenge_bits"]), dtype=np.uint8
    )
    baseline_bits = baseline_devices[0].plane.evaluate(
        challenges, measurements=0
    )
    rows = []
    sweep = {}
    speedups = {}
    numpy_round_s = None
    for name in available_backend_names():
        __, devices, verifier = provision_fleet(
            FLEET, seed=1103, stacked=True, backend=name, **CONFIG
        )
        plane = devices[0].plane
        assert plane.backend == name
        assert np.array_equal(
            plane.evaluate(challenges, measurements=0), baseline_bits
        ), f"backend {name!r} flipped response bits"

        def backend_round(verifier=verifier, devices=devices):
            report = verifier.authenticate_fleet(devices)
            assert report.n_accepted == FLEET

        backend_round()  # warm kernels, MAC states, and the JIT
        round_s = _best_of(backend_round, repeats=3)
        if name == "numpy":
            numpy_round_s = round_s
        speedup = numpy_round_s / round_s
        speedups[name] = speedup
        degraded = plane.compiled_fleet().backend_degraded_reason
        sweep[name] = {
            "backend": name,
            "round_s": float(f"{round_s:.4g}"),
            "auths_per_sec": float(f"{FLEET / round_s:.4g}"),
            "speedup_vs_numpy": float(f"{speedup:.4g}"),
            "degraded_reason": degraded,
        }
        rows.append((name, f"{round_s * 1e3:.0f} ms",
                     f"{FLEET / round_s:.0f}", f"{speedup:.1f}x"))
    table_printer(
        f"FLEET-THR — per-backend round throughput ({FLEET} devices)",
        ["backend", "round time", "auths/s", "speedup"],
        rows,
    )
    _record(backends=sweep)
    if "numba" in speedups:
        assert speedups["numba"] >= BACKEND_FLOOR, (
            f"numba rounds are only {speedups['numba']:.2f}x numpy "
            f"(floor {BACKEND_FLOOR}x)"
        )
