"""CLM-NIST: "good score for various NIST tests" ([12], Sec. II-A).

Feeds bitstreams assembled from photonic weak-PUF fingerprints and
strong-PUF responses through the SP 800-22-style battery and reports the
per-test p-values, plus a degenerate control stream that must fail.
"""

import numpy as np
import pytest

from repro.metrics import pass_fraction, run_suite
from repro.puf.photonic_strong import PhotonicStrongPUF
from repro.puf.photonic_weak import photonic_weak_family


@pytest.fixture(scope="module")
def weak_stream():
    family = photonic_weak_family(24, seed=110, n_rings=64, n_wavelengths=4)
    return np.concatenate([d.read_all(measurement=0) for d in family.devices()])


@pytest.fixture(scope="module")
def strong_stream():
    puf = PhotonicStrongPUF(seed=111, response_bits=32)
    rng = np.random.default_rng(111)
    challenges = rng.integers(0, 2, size=(96, 64), dtype=np.uint8)
    return puf.evaluate_batch(challenges, measurement=0).ravel()


def test_clm_nist_weak_puf(benchmark, table_printer, weak_stream):
    results = benchmark.pedantic(run_suite, args=(weak_stream,),
                                 rounds=1, iterations=1)
    table_printer(
        f"CLM-NIST — weak-PUF fingerprint stream ({weak_stream.size} bits)",
        ["test", "p-value", "verdict"],
        [(r.name, f"{r.p_value:.4f}", "PASS" if r.passed else "FAIL")
         for r in results],
    )
    assert pass_fraction(results) >= 0.75


def test_clm_nist_strong_puf(benchmark, table_printer, strong_stream):
    # Raw strong-PUF responses carry per-bit biases (uniformity ~0.43
    # with a period-32 structure), so the frequency/serial families fail
    # — which is precisely why Fig. 1 puts a post-processing block after
    # the PUF.  Conditioning each response through SHA-256 (the standard
    # entropy-source + conditioner architecture; "ECC, Fuzzy Extraction,
    # etc." in Fig. 1) restores the statistics.
    import hashlib

    raw_results = run_suite(strong_stream)
    responses = strong_stream.reshape(-1, 32)
    digest = b"".join(
        hashlib.sha256(row.tobytes()).digest()[:4] for row in responses
    )
    conditioned = np.unpackbits(np.frombuffer(digest, dtype=np.uint8))
    conditioned_results = run_suite(conditioned)
    table_printer(
        "CLM-NIST — strong-PUF stream, raw vs hash-conditioned",
        ["test", "raw p", "raw", "conditioned p", "conditioned"],
        [(raw.name, f"{raw.p_value:.4f}",
          "PASS" if raw.passed else "FAIL",
          f"{cond.p_value:.4f}", "PASS" if cond.passed else "FAIL")
         for raw, cond in zip(raw_results, conditioned_results)],
    )
    assert pass_fraction(conditioned_results) >= 0.75
    assert pass_fraction(conditioned_results) > pass_fraction(raw_results)


def test_clm_nist_control_fails(benchmark, table_printer):
    degenerate = np.tile([1, 1, 0, 0], 1024).astype(np.uint8)
    results = run_suite(degenerate)
    table_printer(
        "CLM-NIST — degenerate control stream (must fail)",
        ["test", "p-value", "verdict"],
        [(r.name, f"{r.p_value:.4f}", "PASS" if r.passed else "FAIL")
         for r in results],
    )
    assert pass_fraction(results) <= 0.5
