"""REG-SCALE: the out-of-core registry at fleet scale.

The acceptance bars for the pluggable storage layer (see README / CI):

* ``REG_BENCH_DEVICES`` (default 100k) devices provision through a
  :class:`~repro.fleet.storage.ShardedFileBackend` with a deliberately
  tiny resident set, and the process peak RSS stays under
  ``REG_RSS_CEILING_MB`` (default 2048) — fleet size bounded by disk,
  not RAM;
* random-access lookups and full mutual-auth rounds against the big
  fleet take no longer than against a small one
  (``REG_LOOKUP_RATIO``-bounded, the O(1)-lookup floor): the id →
  (shard, offset) index makes paging a record in independent of fleet
  size;
* incremental checkpoints flush O(dirty), not O(fleet).

The photonic simulation is *not* under test here, so devices carry the
cheapest deterministic PUF that still drives the real mutual-auth
protocol end to end (provision → respond → verify → roll).  Results
land in ``BENCH_registry.json``; CI runs this as a blocking lane.  The
full million-device run (the paper-scale claim) is gated behind
``REG_BENCH_FULL=1`` — same harness, same ceiling.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.fleet import BatchVerifier, FleetDevice, FleetRegistry
from repro.fleet.storage import make_backend

DEVICES = int(os.environ.get("REG_BENCH_DEVICES", "100000"))
RESIDENT = int(os.environ.get("REG_BENCH_RESIDENT", "1024"))
RSS_CEILING_MB = float(os.environ.get("REG_RSS_CEILING_MB", "2048"))
LOOKUP_RATIO = float(os.environ.get("REG_LOOKUP_RATIO", "8.0"))
LOOKUPS = int(os.environ.get("REG_BENCH_LOOKUPS", "2000"))
FULL_RUN = os.environ.get("REG_BENCH_FULL", "") == "1"
BASELINE = max(512, DEVICES // 100)   # small-fleet O(1) reference
AUTH_SAMPLE = 256                     # live devices kept for auth rounds
CHUNK = 10_000                        # enrollment batch (bounds transients)
N_POOL = 16
SEED = 904
REG_JSON = "BENCH_registry.json"

_results = {}


def _record(**kwargs) -> None:
    _results.update({k: (float(f"{v:.4g}") if isinstance(v, float) else v)
                     for k, v in kwargs.items()})
    payload = dict(sorted(_results.items()))
    payload["devices"] = DEVICES
    payload["resident_records"] = RESIDENT
    with open(REG_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _vm_rss_mb() -> float:
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) / 1024.0
    return float("nan")


_peak_rss = {"mb": 0.0}


def _sample_rss() -> float:
    now = _vm_rss_mb()
    _peak_rss["mb"] = max(_peak_rss["mb"], now)
    return now


_WEIGHTS = np.random.default_rng(SEED).integers(
    0, 2, size=(32, 16), dtype=np.uint8)


class LinearPUF:
    """Deterministic linear toy PUF — vectorized, noiseless, ~free.

    The bench measures where record bytes live and how fast they page
    back in, so the photonic propagation is swapped for one uint8
    matmul; the mutual-auth protocol on top is the real one.
    """

    challenge_bits = 32
    response_bits = 16

    def __init__(self, index: int):
        self._bias = (((index * 0x9E3779B1) >> np.arange(16)) % 2) \
            .astype(np.uint8)

    def evaluate(self, challenge, measurement=0):
        return self.evaluate_batch(
            np.asarray(challenge, dtype=np.uint8)[None, :],
            measurement=measurement)[0]

    def evaluate_batch(self, challenges, measurement=0):
        mixed = np.asarray(challenges, dtype=np.uint8) @ _WEIGHTS
        return ((mixed + self._bias) % 2).astype(np.uint8)


def _make_device(index: int) -> FleetDevice:
    device = FleetDevice(f"fleet-{index:07d}", LinearPUF(index))
    device.provision(SEED)
    return device


def provision_fleet(root, n_devices, resident, keep=()):
    """Enroll ``n_devices`` synthetic devices out-of-core, in chunks.

    Only the ``keep`` indices survive as live :class:`FleetDevice`
    objects — everything else is transient, so host RAM holds the
    backend's index and resident set, never the fleet.
    """
    registry = FleetRegistry(make_backend(
        "sharded", root=str(root), resident_records=resident))
    keep = set(keep)
    kept = {}
    start = time.perf_counter()
    for lo in range(0, n_devices, CHUNK):
        batch = [_make_device(i) for i in range(lo, min(lo + CHUNK,
                                                        n_devices))]
        registry.enroll_fleet(batch, n_spot_crps=N_POOL, seed=SEED)
        for device in batch:
            index = int(device.device_id.rsplit("-", 1)[1])
            if index in keep:
                kept[index] = device
        _sample_rss()
    enroll_s = time.perf_counter() - start
    registry.backend.checkpoint()
    _sample_rss()
    return registry, kept, enroll_s


def _lookup_us(registry, n_devices, rng, lookups) -> float:
    """Mean random-access ``record()`` latency, fault path included."""
    picks = rng.integers(0, n_devices, size=lookups)
    start = time.perf_counter()
    for index in picks:
        record = registry.record(f"fleet-{int(index):07d}")
        # Touch the lazily-paged pool, not just the resident slot.
        assert int(record.crp_challenges[0, 0]) in (0, 1)
    elapsed = time.perf_counter() - start
    _sample_rss()
    return elapsed / lookups * 1e6


@pytest.fixture(scope="module")
def big_fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("reg-scale") / "shards"
    _record(rss_baseline_mb=_sample_rss())
    registry, kept, enroll_s = provision_fleet(
        root, DEVICES, RESIDENT,
        keep=range(0, DEVICES, max(1, DEVICES // AUTH_SAMPLE)))
    yield registry, kept, enroll_s
    registry.close()


@pytest.fixture(scope="module")
def small_fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("reg-scale-small") / "shards"
    registry, kept, __ = provision_fleet(
        root, BASELINE, RESIDENT,
        keep=range(0, BASELINE, max(1, BASELINE // AUTH_SAMPLE)))
    yield registry, kept
    registry.close()


def test_registry_outofcore_provisioning(table_printer, big_fleet):
    registry, __, enroll_s = big_fleet
    assert len(registry) == DEVICES
    backend = registry.backend
    assert backend.resident_count <= RESIDENT
    storage_mb = registry.storage_bytes / 1e6
    peak = _peak_rss["mb"]
    table_printer(
        f"REG-SCALE — out-of-core provisioning ({DEVICES} devices, "
        f"{N_POOL} spot CRPs each)",
        ["measure", "value"],
        [
            ("enrollment", f"{enroll_s:.1f} s "
                           f"({DEVICES / enroll_s:.0f} devices/s)"),
            ("verifier storage (disk)", f"{storage_mb:.0f} MB"),
            ("resident records", f"{backend.resident_count} "
                                 f"(cap {RESIDENT})"),
            ("peak RSS", f"{peak:.0f} MB (ceiling {RSS_CEILING_MB:.0f})"),
        ],
    )
    _record(enroll_s=enroll_s, enroll_per_sec=DEVICES / enroll_s,
            storage_mb=storage_mb, peak_rss_mb=peak)
    assert peak < RSS_CEILING_MB, (
        f"peak RSS {peak:.0f} MB breached the {RSS_CEILING_MB:.0f} MB "
        f"out-of-core ceiling"
    )


def test_registry_lookup_flat_in_fleet_size(table_printer, big_fleet,
                                            small_fleet):
    big_registry, __, __ = big_fleet
    small_registry, __ = small_fleet
    # Same miss regime on both sides: with a resident cap far below
    # either fleet, every measured lookup is a genuine page-in.
    caps = (big_registry.backend.resident_records,
            small_registry.backend.resident_records)
    big_registry.backend.resident_records = 64
    small_registry.backend.resident_records = 64
    try:
        rng = np.random.default_rng(SEED)
        _lookup_us(small_registry, BASELINE, rng, 200)   # warm the path
        small_us = _lookup_us(small_registry, BASELINE, rng, LOOKUPS)
        big_us = _lookup_us(big_registry, DEVICES, rng, LOOKUPS)
    finally:
        big_registry.backend.resident_records = caps[0]
        small_registry.backend.resident_records = caps[1]
    ratio = big_us / small_us
    table_printer(
        f"REG-SCALE — random-access lookup, {BASELINE} vs {DEVICES} "
        f"devices ({LOOKUPS} lookups)",
        ["fleet", "per-lookup", "ratio"],
        [
            (f"{BASELINE} devices", f"{small_us:.1f} us", "1.0x"),
            (f"{DEVICES} devices", f"{big_us:.1f} us", f"{ratio:.2f}x"),
        ],
    )
    _record(lookup_small_us=small_us, lookup_big_us=big_us,
            lookup_ratio=ratio)
    assert ratio <= LOOKUP_RATIO, (
        f"random-access lookup grew {ratio:.2f}x from {BASELINE} to "
        f"{DEVICES} devices (floor {LOOKUP_RATIO}x) — paging is not O(1)"
    )


def test_registry_auth_rounds_outofcore(table_printer, big_fleet,
                                        small_fleet):
    big_registry, big_kept, __ = big_fleet
    small_registry, small_kept = small_fleet
    big_devices = [big_kept[i] for i in sorted(big_kept)][:AUTH_SAMPLE]
    small_devices = [small_kept[i]
                     for i in sorted(small_kept)][:AUTH_SAMPLE]

    def round_s(registry, devices):
        verifier = BatchVerifier(registry, seed=SEED)
        report = verifier.authenticate_fleet(devices)   # warm MAC states
        assert report.n_accepted == len(devices)
        start = time.perf_counter()
        report = verifier.authenticate_fleet(devices)
        elapsed = time.perf_counter() - start
        assert report.n_accepted == len(devices)
        _sample_rss()
        return elapsed

    small_s = round_s(small_registry, small_devices)
    big_s = round_s(big_registry, big_devices)
    ratio = big_s / small_s
    # Incremental checkpoint: 2 rounds rolled len(big_devices) records;
    # the flush is O(dirty), and a clean checkpoint is a no-op.
    start = time.perf_counter()
    big_registry.backend.checkpoint()
    checkpoint_s = time.perf_counter() - start
    start = time.perf_counter()
    big_registry.backend.checkpoint()
    checkpoint_clean_s = time.perf_counter() - start
    peak = _peak_rss["mb"]
    table_printer(
        f"REG-SCALE — mutual-auth rounds, {AUTH_SAMPLE}-device sample",
        ["measure", "value"],
        [
            (f"round vs {BASELINE}-device fleet",
             f"{small_s * 1e3:.1f} ms"),
            (f"round vs {DEVICES}-device fleet",
             f"{big_s * 1e3:.1f} ms ({ratio:.2f}x)"),
            ("incremental checkpoint (dirty)", f"{checkpoint_s * 1e3:.1f} ms"),
            ("incremental checkpoint (clean)",
             f"{checkpoint_clean_s * 1e3:.2f} ms"),
            ("peak RSS", f"{peak:.0f} MB"),
        ],
    )
    _record(auth_small_s=small_s, auth_big_s=big_s, auth_ratio=ratio,
            auths_per_sec=len(big_devices) / big_s,
            checkpoint_dirty_s=checkpoint_s,
            checkpoint_clean_s=checkpoint_clean_s,
            peak_rss_mb=peak)
    assert ratio <= LOOKUP_RATIO, (
        f"auth-round latency grew {ratio:.2f}x from {BASELINE} to "
        f"{DEVICES} devices (floor {LOOKUP_RATIO}x)"
    )
    assert peak < RSS_CEILING_MB


@pytest.mark.skipif(not FULL_RUN,
                    reason="million-device run is REG_BENCH_FULL=1 gated")
def test_registry_million_devices(table_printer, tmp_path):
    """The paper-scale claim: 1M devices, auth rounds, RSS < 2 GB."""
    n_devices = int(os.environ.get("REG_BENCH_FULL_DEVICES", "1000000"))
    registry, kept, enroll_s = provision_fleet(
        tmp_path / "shards", n_devices, RESIDENT,
        keep=range(0, n_devices, max(1, n_devices // AUTH_SAMPLE)))
    try:
        devices = [kept[i] for i in sorted(kept)][:AUTH_SAMPLE]
        verifier = BatchVerifier(registry, seed=SEED)
        start = time.perf_counter()
        report = verifier.authenticate_fleet(devices)
        round_s = time.perf_counter() - start
        assert report.n_accepted == len(devices)
        registry.backend.checkpoint()
        _sample_rss()
        peak = _peak_rss["mb"]
        storage_mb = registry.storage_bytes / 1e6
    finally:
        registry.close()
    table_printer(
        f"REG-SCALE — full run ({n_devices} devices)",
        ["measure", "value"],
        [
            ("enrollment", f"{enroll_s:.0f} s "
                           f"({n_devices / enroll_s:.0f} devices/s)"),
            ("verifier storage (disk)", f"{storage_mb:.0f} MB"),
            (f"auth round ({AUTH_SAMPLE} devices)",
             f"{round_s * 1e3:.0f} ms"),
            ("peak RSS", f"{peak:.0f} MB (ceiling {RSS_CEILING_MB:.0f})"),
        ],
    )
    _record(full_devices=n_devices, full_enroll_s=enroll_s,
            full_storage_mb=storage_mb, full_round_s=round_s,
            full_peak_rss_mb=peak)
    assert peak < RSS_CEILING_MB, (
        f"peak RSS {peak:.0f} MB breached the {RSS_CEILING_MB:.0f} MB "
        f"ceiling at {n_devices} devices"
    )
