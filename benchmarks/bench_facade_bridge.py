"""Shared legacy-tuple provisioning bridge for the benchmark modules.

Same role as ``tests/fleet/facade_bridge.py`` (distinct module name —
both directories land on ``sys.path`` during one pytest run): the
throughput benchmarks compare stacked/sharded/per-die paths through the
old ``(registry, devices, verifier)`` tuple without calling the
deprecated ``repro.fleet.provision_fleet`` shim.
"""

from repro.service import AuthService, EngineConfig, FleetConfig


def provision_fleet(n_devices, seed=0, n_spot_crps=0, stacked=True,
                    shard_workers=None, backend="numpy", **puf):
    """Legacy-tuple provisioning through the supported facade."""
    service = AuthService.provision(FleetConfig(
        n_devices=n_devices, seed=seed, n_spot_crps=n_spot_crps,
        engine=EngineConfig(stacked=stacked, shard_workers=shard_workers,
                            backend=backend),
        puf=puf))
    return service.registry, service.device_list, service.verifier
