"""SAT-MICRO: floor gates for the PR 4 satellite vectorizations.

Each satellite replaced a pure-Python per-bit/per-coefficient loop with
numpy bulk operations while pinning exact outputs (see
``tests/crypto/test_gf2_bch.py`` / ``tests/metrics/test_nist.py``); this
smoke bench keeps them fast by construction: a regression back to loop
speed fails the floor.  Results land in ``BENCH_micro.json``.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.crypto.bch import BCHCode
from repro.metrics.nist import _longest_runs, longest_run_test

BCH_FLOOR = float(os.environ.get("BCH_SPEEDUP_FLOOR", "5.0"))
NIST_FLOOR = float(os.environ.get("NIST_SPEEDUP_FLOOR", "3.0"))
RING_SCAN_FLOOR = float(os.environ.get("RING_SCAN_SPEEDUP_FLOOR", "3.0"))
MICRO_JSON = "BENCH_micro.json"

_results = {}


def _record(**kwargs) -> None:
    _results.update({k: (float(f"{v:.4g}") if isinstance(v, float) else v)
                     for k, v in kwargs.items()})
    with open(MICRO_JSON, "w") as handle:
        json.dump(dict(sorted(_results.items())), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def _time(fn, repeats):
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bch_vectorization_floor(table_printer):
    code = BCHCode(m=7, t=10)
    rng = np.random.default_rng(2)
    messages = rng.integers(0, 2, size=(64, code.k), dtype=np.uint8)
    codewords = [code.encode(message) for message in messages]

    def encode_fast():
        for message in messages:
            code.encode(message)

    def encode_reference():
        for message in messages:
            code.encode_reference(message)

    def syndromes_fast():
        for codeword in codewords:
            code.syndromes(codeword)

    def syndromes_reference():
        for codeword in codewords:
            code.syndromes_reference(codeword)

    fast_enc = _time(encode_fast, 3)
    ref_enc = _time(encode_reference, 3)
    fast_syn = _time(syndromes_fast, 3)
    ref_syn = _time(syndromes_reference, 3)
    encode_speedup = ref_enc / fast_enc
    syndrome_speedup = ref_syn / fast_syn
    table_printer(
        "SAT-MICRO — BCH(127) GF(2) matmul vs polynomial loops (64 words)",
        ["path", "encode", "syndromes"],
        [
            ("loop reference", f"{ref_enc * 1e3:.1f} ms",
             f"{ref_syn * 1e3:.1f} ms"),
            ("vectorized", f"{fast_enc * 1e3:.1f} ms",
             f"{fast_syn * 1e3:.1f} ms"),
            ("speedup", f"{encode_speedup:.1f}x", f"{syndrome_speedup:.1f}x"),
        ],
    )
    _record(bch_encode_speedup=encode_speedup,
            bch_syndrome_speedup=syndrome_speedup)
    assert encode_speedup >= BCH_FLOOR
    assert syndrome_speedup >= BCH_FLOOR


def test_nist_longest_run_floor(table_printer):
    rng = np.random.default_rng(3)
    bits = rng.integers(0, 2, size=131072, dtype=np.uint8)
    blocks = bits[: (bits.size // 128) * 128].reshape(-1, 128)

    def loop_reference():
        longest = np.empty(blocks.shape[0], dtype=np.int64)
        for index, block in enumerate(blocks):
            best = current = 0
            for bit in block:
                current = current + 1 if bit else 0
                best = max(best, current)
            longest[index] = best
        return longest

    fast_s = _time(lambda: _longest_runs(blocks), 3)
    ref_s = _time(loop_reference, 3)
    assert np.array_equal(_longest_runs(blocks), loop_reference())
    speedup = ref_s / fast_s
    # The public test must agree with itself end to end too.
    result = longest_run_test(bits)
    table_printer(
        "SAT-MICRO — NIST longest-run kernel (1024 blocks x 128 bits)",
        ["path", "time", "speedup"],
        [
            ("per-bit loop", f"{ref_s * 1e3:.1f} ms", "1.0x"),
            ("cumulative ops", f"{fast_s * 1e3:.2f} ms", f"{speedup:.0f}x"),
        ],
    )
    _record(nist_longest_run_speedup=speedup,
            nist_longest_run_p=float(result.p_value))
    assert speedup >= NIST_FLOOR
    assert 0.0 <= result.p_value <= 1.0


def test_ring_scan_kernel_floor(table_printer):
    """Numba JIT ring scan vs the numpy block-major reference.

    Skips when the JIT toolchain is absent (the CI optional-deps lane
    installs numba and binds the floor); the rtol-1e-9 equivalence
    assert runs whenever the kernel does.
    """
    from repro.photonics.backend import (
        BackendUnavailable,
        get_backend,
        resolve_backend,
    )

    numba, reason = resolve_backend("numba")
    if numba.name != "numba":
        pytest.skip(f"numba backend unavailable: {reason}")
    try:
        numba.ensure_ready()
    except BackendUnavailable as exc:  # pragma: no cover - broken JIT
        pytest.skip(str(exc))
    reference = get_backend("numpy")
    # A fleet-plane-shaped workload: 256 dies x 16 channels of rings,
    # batch 2, 768 samples, delay 9 — the stacked_ring_scan call shape
    # CompiledFleet.propagate issues per stage.
    rng = np.random.default_rng(29)
    shape = (256, 2, 16, 768)
    fields = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    coeff_shape = (shape[0], 1, shape[2], 1)
    tau = rng.uniform(0.84, 0.92, coeff_shape).astype(np.complex128)
    rho = 0.99 * np.exp(-1j * rng.uniform(0, 2 * np.pi, coeff_shape))
    feedback = tau * rho
    delay = 9

    np.testing.assert_allclose(
        numba.ring_scan(fields, tau, rho, feedback, delay),
        reference.ring_scan(fields, tau, rho, feedback, delay),
        rtol=1e-9, atol=1e-12,
    )
    numba_s = _time(
        lambda: numba.ring_scan(fields, tau, rho, feedback, delay), 5
    )
    numpy_s = _time(
        lambda: reference.ring_scan(fields, tau, rho, feedback, delay), 5
    )
    speedup = numpy_s / numba_s
    table_printer(
        "SAT-MICRO — ring-scan kernel (256 dies x 16 rings x 768 samples)",
        ["path", "time", "speedup"],
        [
            ("numpy block-major", f"{numpy_s * 1e3:.1f} ms", "1.0x"),
            ("numba JIT rows", f"{numba_s * 1e3:.1f} ms", f"{speedup:.1f}x"),
        ],
    )
    _record(ring_scan_numpy_s=numpy_s, ring_scan_numba_s=numba_s,
            ring_scan_speedup=speedup)
    assert speedup >= RING_SCAN_FLOOR, (
        f"numba ring scan is only {speedup:.1f}x numpy "
        f"(floor {RING_SCAN_FLOOR}x)"
    )
