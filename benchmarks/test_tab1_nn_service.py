"""TAB1: the load_network / execute_network encrypted API of Table I.

Regenerates the table's semantics and measures the service: ciphertext
in, ciphertext out, plaintext never software-visible, keys never exposed,
tampered ciphertexts rejected — plus service latency on the SoC model.
"""

import numpy as np
import pytest

from repro.accelerator.network import LayerConfig, NetworkConfig
from repro.protocols.nn_service import (
    KeyVault,
    NetworkOwner,
    SecureAccelerator,
    ServiceError,
)
from repro.system.soc import DeviceSoC, SoCConfig


@pytest.fixture(scope="module")
def service():
    soc = DeviceSoC(SoCConfig(seed=90, memory_size=8 * 1024))
    vault = KeyVault(soc, seed=90)
    accelerator = SecureAccelerator(soc, vault)
    owner = NetworkOwner(vault)
    rng = np.random.default_rng(90)
    config = NetworkConfig(layers=[
        LayerConfig(rng.normal(size=(16, 8)), rng.normal(size=16), "relu"),
        LayerConfig(rng.normal(size=(4, 16)), rng.normal(size=4), "linear"),
    ])
    return soc, accelerator, owner, config


def test_tab1_load_network(benchmark, table_printer, service):
    __, accelerator, owner, config = service
    sealed = owner.seal_network(config)

    benchmark.pedantic(accelerator.load_network, args=(sealed,),
                       rounds=3, iterations=1)
    table_printer(
        "TAB1 — load_network(ciphered_network)",
        ["quantity", "value"],
        [
            ("ciphertext bytes", len(sealed)),
            ("programmed MZIs", accelerator.accelerator.n_mzis()),
            ("hardware decrypt+program latency (ms)",
             f"{accelerator.load_time_s * 1e3:.3f}"),
        ],
    )


def test_tab1_execute_network(benchmark, table_printer, service):
    __, accelerator, owner, config = service
    accelerator.load_network(owner.seal_network(config))
    sealed_input = owner.seal_input(np.linspace(-1, 1, 8))

    sealed_output = benchmark(accelerator.execute_network, sealed_input)
    output = owner.open_output(sealed_output)
    table_printer(
        "TAB1 — execute_network(ciphered_input) -> ciphered_output",
        ["quantity", "value"],
        [
            ("input ciphertext bytes", len(sealed_input)),
            ("output ciphertext bytes", len(sealed_output)),
            ("output dimension", output.size),
            ("service latency (ms)",
             f"{accelerator.execute_time_s * 1e3:.3f}"),
        ],
    )
    assert output.size == 4


def test_tab1_confidentiality_properties(benchmark, service):
    __, accelerator, owner, config = service
    accelerator.load_network(owner.seal_network(config))
    x = np.linspace(0, 1, 8)
    sealed_out = accelerator.execute_network(owner.seal_input(x))
    plain_out = owner.open_output(sealed_out)
    # Table I semantics: nothing plaintext crosses to software.
    for secret in (config.serialize(), x.tobytes(), plain_out.tobytes()):
        for visible in accelerator.software_visible_log:
            assert secret not in visible
    # Key never exposed.
    assert not hasattr(accelerator.vault, "master_key")


def test_tab1_integrity_enforced(benchmark, service):
    __, accelerator, owner, config = service
    accelerator.load_network(owner.seal_network(config))
    tampered = bytearray(owner.seal_input(np.zeros(8)))
    tampered[18] ^= 1
    with pytest.raises(ServiceError):
        accelerator.execute_network(bytes(tampered))
