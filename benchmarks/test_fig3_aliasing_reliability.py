"""FIG3 / FIG3-P: bit-aliasing entropy and reliability vs. selection threshold.

Regenerates the paper's Fig. 3 ([13]): as the enrollment threshold on the
analog margin moves away from the decision boundary, reliability rises
toward 1 while the bit-aliasing Shannon entropy collapses (the systematic
layout component dominates extreme margins), and the surviving CRP count
shrinks.  The shaded trade-off region of the figure is the band where
both entropy and reliability stay above their floors.

FIG3 uses the RO PUF with counter-difference thresholds, exactly as [13];
FIG3-P repeats it on the photonic weak PUF with photocurrent-amplitude
thresholds, the adaptation the paper proposes in Sec. II-B.
"""

import numpy as np
import pytest

from repro.puf import PUFFamily, ROPUF
from repro.puf.photonic_weak import photonic_weak_family
from repro.quality.filtering import (
    aliasing_reliability_sweep,
    collect_population_data,
    recommend_band,
)


@pytest.fixture(scope="module")
def ro_population():
    family = PUFFamily(
        lambda die: ROPUF(n_ros=512, seed=70, die_index=die,
                          sigma_noise=6e-4),
        24,
    )
    return collect_population_data(family, n_measurements=7)


@pytest.fixture(scope="module")
def photonic_population():
    family = photonic_weak_family(16, seed=71, n_rings=64, n_wavelengths=2)
    return collect_population_data(family, n_measurements=5)


def _sweep_rows(margins, bits, n_points=10):
    thresholds = np.linspace(0.0, 2.5 * np.abs(margins).std(), n_points)
    rows = aliasing_reliability_sweep(margins, bits, thresholds)
    return thresholds, rows


def test_fig3_ro_counter_threshold(benchmark, table_printer, ro_population):
    margins, bits = ro_population
    __, rows = benchmark.pedantic(
        _sweep_rows, args=(margins, bits), rounds=1, iterations=1
    )
    table_printer(
        "FIG3 — RO PUF: aliasing entropy / reliability vs counter threshold",
        ["threshold (counts)", "aliasing entropy", "reliability",
         "surviving CRPs"],
        [(f"{r.threshold:8.1f}", f"{r.aliasing_entropy:.3f}",
          f"{r.reliability:.4f}", f"{r.surviving_fraction:.3f}")
         for r in rows],
    )
    finite = [r for r in rows if not np.isnan(r.aliasing_entropy)]
    # Paper-shape assertions: entropy decreases, reliability increases.
    assert finite[0].aliasing_entropy > finite[-1].aliasing_entropy + 0.2
    assert finite[-1].reliability >= finite[0].reliability
    assert finite[0].surviving_fraction == 1.0
    band = recommend_band(rows, min_entropy=0.7, min_reliability=0.98)
    assert band is not None, "the shaded trade-off region must exist"
    print(f"trade-off band (shaded region): thresholds {band[0]:.1f}"
          f" .. {band[1]:.1f} counts")


def test_fig3p_photonic_photocurrent_threshold(benchmark, table_printer,
                                               photonic_population):
    margins, bits = photonic_population
    __, rows = benchmark.pedantic(
        _sweep_rows, args=(margins, bits), rounds=1, iterations=1
    )
    table_printer(
        "FIG3-P — photonic weak PUF: photocurrent-amplitude threshold",
        ["threshold (V)", "aliasing entropy", "reliability",
         "surviving CRPs"],
        [(f"{r.threshold:.4f}", f"{r.aliasing_entropy:.3f}",
          f"{r.reliability:.4f}", f"{r.surviving_fraction:.3f}")
         for r in rows],
    )
    finite = [r for r in rows if not np.isnan(r.aliasing_entropy)]
    assert finite[0].surviving_fraction == 1.0
    assert finite[-1].surviving_fraction < 0.5
    # Same qualitative shape as the RO case.
    assert finite[0].aliasing_entropy > finite[-1].aliasing_entropy
