"""SHARD-THR: sharded multi-core fleet plane vs the stacked single-process path.

The acceptance bar — >= 3x round throughput at 1024 devices over the
*PR 3* stacked single-process baseline on >= 4 cores — decomposes into
two factors this bench measures and records separately:

* the batched round stages of this PR (challenge-derivation memo,
  vectorized noise-state injection, round-wide packbits/MAC batching)
  already lift the *single-process* path ~1.4x over PR 3 on identical
  hardware (PR 3 recorded 4276 auths/s at 1024 devices on the reference
  host; ``auths_per_sec_single`` is the cross-PR comparable number);
* sharding then multiplies that by the worker-pool speedup measured
  here as ``round_speedup`` (sharded vs the *current* single-process
  path — a conservative baseline, since it is already faster than
  PR 3's).  The floor binds only on hosts with >= ``SHARD_MIN_CORES``
  usable cores; the numbers are always measured and recorded.  CI runs
  a 2-worker configuration with a matching floor.

Always asserted, on every host: sharded vs single-process max relative
error <= 1e-12 (measured bitwise-equal in practice) and bitwise-equal
round transcripts.  Results land in ``BENCH_shard.json``.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.fleet import respond_round as respond_fleet
from repro.photonics.shard import usable_cores

from bench_facade_bridge import provision_fleet

FLEET = int(os.environ.get("SHARD_BENCH_SIZE", "1024"))
WORKERS = int(os.environ.get(
    "SHARD_BENCH_WORKERS", str(max(1, min(4, usable_cores())))
))
SPEEDUP_FLOOR = float(os.environ.get("SHARD_SPEEDUP_FLOOR", "1.5"))
MIN_CORES = int(os.environ.get("SHARD_MIN_CORES", "4"))
SHARD_JSON = "BENCH_shard.json"
MAX_REL_ERR = 1e-12

CONFIG = dict(challenge_bits=64, n_stages=12, response_bits=32,
              n_spot_crps=0)

_results = {}


def _record(**kwargs) -> None:
    _results.update({k: (float(f"{v:.4g}") if isinstance(v, float) else v)
                     for k, v in kwargs.items()})
    payload = dict(sorted(_results.items()))
    payload["fleet_size"] = FLEET
    payload["n_workers"] = WORKERS
    payload["usable_cores"] = usable_cores()
    with open(SHARD_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _best_of(fn, repeats):
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def fleet():
    registry, devices, verifier = provision_fleet(
        FLEET, seed=3301, stacked=True, **CONFIG
    )
    yield registry, devices, verifier
    devices[0].plane.close_executor()


def test_shard_round_throughput(table_printer, fleet):
    """Rounds on the sharded plane vs the single-process stacked plane."""
    __, devices, verifier = fleet
    plane = devices[0].plane
    verifier.authenticate_fleet(devices)  # warm kernels + MAC states

    def one_round():
        report = verifier.authenticate_fleet(devices)
        assert report.n_accepted == FLEET

    single_s = _best_of(one_round, repeats=3)

    executor = plane.shard(n_workers=WORKERS)
    pool_started = executor.active
    one_round()  # warm the workers' first-touch paths
    sharded_s = _best_of(one_round, repeats=3)
    speedup = single_s / sharded_s
    table_printer(
        f"SHARD-THR — authentication rounds ({FLEET} devices, "
        f"{WORKERS} workers on {usable_cores()} cores)",
        ["path", "round time", "auths/s", "speedup"],
        [
            ("stacked single-process", f"{single_s * 1e3:.0f} ms",
             f"{FLEET / single_s:.0f}", "1.0x"),
            ("sharded fleet plane", f"{sharded_s * 1e3:.0f} ms",
             f"{FLEET / sharded_s:.0f}", f"{speedup:.2f}x"),
        ],
    )
    _record(round_single_s=single_s, round_sharded_s=sharded_s,
            round_speedup=speedup,
            auths_per_sec_single=FLEET / single_s,
            auths_per_sec_sharded=FLEET / sharded_s,
            pool_started=bool(pool_started))
    assert pool_started, "shard worker pool failed to start"
    if usable_cores() < MIN_CORES:
        pytest.skip(
            f"only {usable_cores()} usable cores (< {MIN_CORES}): speedup "
            f"{speedup:.2f}x recorded, floor not binding on this host"
        )
    assert speedup >= SPEEDUP_FLOOR, (
        f"sharded rounds are only {speedup:.2f}x faster than the stacked "
        f"single-process plane (floor {SPEEDUP_FLOOR}x at {WORKERS} workers)"
    )


def test_shard_numerical_equivalence(table_printer, fleet):
    """Sharded plane pass vs single-process pass: <= 1e-12 rel error."""
    __, devices, __ = fleet
    plane = devices[0].plane
    executor = plane.executor or plane.shard(n_workers=WORKERS)
    compiled = executor.fleet
    sample = list(range(0, FLEET, max(1, FLEET // 32)))
    rng = np.random.default_rng(11)
    waves = rng.normal(size=(len(sample), 2, 272))
    samples = np.arange(0, 272, 13)
    reference = compiled.response_power_at(waves, samples, 4, dies=sample)
    sharded = executor.response_power_at(waves, samples, 4, dies=sample)
    scale = float(np.max(np.abs(reference)))
    max_rel = float(np.max(np.abs(sharded - reference)) / scale)
    bitwise = bool(np.array_equal(sharded, reference))
    table_printer(
        "SHARD-THR — sharded vs single-process numerical agreement",
        ["check", "value"],
        [
            ("dies sampled", len(sample)),
            ("max relative error", f"{max_rel:.2e}"),
            ("bitwise equal", str(bitwise)),
        ],
    )
    _record(equivalence_max_rel_err=max_rel,
            equivalence_bitwise=bitwise)
    assert max_rel <= MAX_REL_ERR


def test_shard_transcripts_bitwise_equal(table_printer):
    """Full-round transcripts: sharded == single-process, byte for byte."""
    size = max(8, min(64, FLEET // 16))
    config = dict(CONFIG)
    __, devices1, verifier1 = provision_fleet(size, seed=4401,
                                              stacked=True, **config)
    __, devices2, verifier2 = provision_fleet(size, seed=4401, stacked=True,
                                              shard_workers=WORKERS, **config)
    try:
        equal = True
        for __ in range(2):
            nonces1 = verifier1.open_round([d.device_id for d in devices1])
            nonces2 = verifier2.open_round([d.device_id for d in devices2])
            messages1 = respond_fleet(devices1, nonces1)
            messages2 = respond_fleet(devices2, nonces2)
            equal &= all(
                m1.body == m2.body and m1.tag == m2.tag
                for m1, m2 in zip(messages1, messages2)
            )
            report1 = verifier1.verify_round(messages1, nonces1)
            report2 = verifier2.verify_round(messages2, nonces2)
            equal &= report1.confirmations == report2.confirmations
            for devices, verifier, nonces, report in (
                (devices1, verifier1, nonces1, report1),
                (devices2, verifier2, nonces2, report2),
            ):
                for device in devices:
                    device.confirm(report.confirmations[device.device_id],
                                   nonces[device.device_id])
                    verifier.finalize(device.device_id)
    finally:
        devices2[0].plane.close_executor()
    table_printer(
        f"SHARD-THR — round transcripts ({size} devices, 2 rounds)",
        ["check", "value"],
        [("messages + confirmations bitwise equal", str(equal))],
    )
    _record(transcripts_bitwise_equal=bool(equal))
    assert equal
