"""CLM-SPD: interrogation speed and response lifetime (Secs. II-A, IV).

Claims: 25 Gbit/s modulation (demonstrated architecture), >= 5 Gb/s pPUF
challenge throughput for attestation, and a response that exists "for a
very short period of time (below 100 ns)" after interrogation.
"""

import numpy as np
import pytest

from repro.puf import PhotonicStrongPUF


@pytest.fixture(scope="module")
def puf():
    return PhotonicStrongPUF(challenge_bits=64, response_bits=32, seed=150)


def test_clm_spd_rates(benchmark, table_printer, puf):
    table_printer(
        "CLM-SPD — interrogation chain timing",
        ["quantity", "value", "paper claim"],
        [
            ("modulation rate", f"{puf.throughput_bits_per_s() / 1e9:.0f} Gb/s",
             "25 Gbit/s (Sec. II-A)"),
            ("one interrogation",
             f"{puf.interrogation_time_s() * 1e9:.2f} ns",
             "64 challenge bits + guard"),
            ("response lifetime",
             f"{puf.response_lifetime_s() * 1e9:.2f} ns",
             "< 100 ns (Sec. IV)"),
            ("challenge throughput for attestation",
             f"{1.0 / puf.interrogation_time_s() / 1e6:.1f} M CRP/s",
             ">= 5 Gb/s equivalent"),
        ],
    )
    assert puf.throughput_bits_per_s() >= 5e9
    assert puf.response_lifetime_s() < 100e-9


def test_clm_spd_simulation_kernel(benchmark, puf):
    """Wall-clock cost of the *simulator* itself (not the physics)."""
    rng = np.random.default_rng(150)
    challenges = rng.integers(0, 2, size=(16, 64), dtype=np.uint8)
    benchmark(puf.evaluate_batch, challenges)


def test_clm_spd_attestation_rate_requirement(benchmark, puf):
    # Attestation consumes one CRP per hashed chunk; at 100 MHz the hash
    # takes ~60 us, the pPUF ~3 ns: four orders of magnitude of margin.
    from repro.system.cpu import ProcessorModel

    hash_time = ProcessorModel().hash_time(256 + 64)
    margin = hash_time / puf.interrogation_time_s()
    assert margin > 1e3
