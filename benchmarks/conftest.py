"""Shared configuration for the benchmark harness.

Every file regenerates one table/figure/claim from the paper (see the
per-experiment index in DESIGN.md) and prints the rows it reports; run
with ``pytest benchmarks/ --benchmark-only -s`` to see them.

``--bench-json [PATH]`` dumps per-test wall-clock timings (the `call`
phase of every benchmark test) as JSON — ``BENCH_engine.json`` by
default — so CI can archive the perf trajectory PR-over-PR.
"""

import json

import pytest

DEFAULT_BENCH_JSON = "BENCH_engine.json"

_timings = {}


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        nargs="?",
        const=DEFAULT_BENCH_JSON,
        default=None,
        metavar="PATH",
        help=(
            "dump per-test wall-clock timings (seconds) to PATH "
            f"(default: {DEFAULT_BENCH_JSON})"
        ),
    )


def pytest_runtest_logreport(report):
    if report.when == "call":
        _timings[report.nodeid] = {
            "duration_s": round(report.duration, 6),
            "outcome": report.outcome,
        }


def pytest_sessionfinish(session):
    path = session.config.getoption("--bench-json", default=None)
    if not path or not _timings:
        return
    payload = {
        "tests": dict(sorted(_timings.items())),
        "total_s": round(sum(t["duration_s"] for t in _timings.values()), 6),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def print_table(title: str, header: list, rows: list) -> None:
    """Render one experiment's output table."""
    print(f"\n### {title}")
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(header)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def table_printer():
    return print_table
