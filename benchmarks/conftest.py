"""Shared configuration for the benchmark harness.

Every file regenerates one table/figure/claim from the paper (see the
per-experiment index in DESIGN.md) and prints the rows it reports; run
with ``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

import pytest


def print_table(title: str, header: list, rows: list) -> None:
    """Render one experiment's output table."""
    print(f"\n### {title}")
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(header)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def table_printer():
    return print_table
