"""CLM-HD: "fractional Hamming distance close to 50 % intra and inter-device".

The paper's Sec. II-A quotes the microring-array architecture of [12] as
achieving inter-device fractional HD close to 50 % with good intra-device
stability.  This bench measures both distributions over a simulated wafer
of photonic weak PUFs and over the strong PUF, and reports the classic
quality table.
"""

import numpy as np

from repro.metrics import quality_report
from repro.puf.photonic_strong import PhotonicStrongPUF
from repro.puf.photonic_weak import photonic_weak_family


def _weak_study(n_devices=16, n_measurements=5):
    family = photonic_weak_family(n_devices, seed=100, n_rings=64,
                                  n_wavelengths=4)
    references, repeated = [], []
    for device in family.devices():
        measurements = [device.read_all(measurement=m)
                        for m in range(n_measurements)]
        references.append(measurements[0])
        repeated.append(np.vstack(measurements))
    return quality_report(np.vstack(references), repeated)


def test_clm_hd_weak_puf(benchmark, table_printer):
    report = benchmark.pedantic(_weak_study, rounds=1, iterations=1)
    table_printer(
        "CLM-HD — photonic weak PUF population statistics",
        ["metric", "measured", "paper/[12] target"],
        [
            ("uniformity", f"{report.uniformity_mean:.4f}", "~0.5"),
            ("uniqueness (inter-HD)", f"{report.uniqueness_mean:.4f}",
             "close to 0.5"),
            ("intra-HD (1 - reliability)",
             f"{1 - report.reliability_mean:.4f}", "close to 0"),
            ("bit-aliasing entropy", f"{report.aliasing_entropy_mean:.4f}",
             "close to 1"),
        ],
    )
    assert 0.4 < report.uniqueness_mean < 0.6
    assert report.reliability_mean > 0.95
    assert 0.35 < report.uniformity_mean < 0.65


def test_clm_hd_strong_puf(benchmark, table_printer):
    rng = np.random.default_rng(101)
    challenges = rng.integers(0, 2, size=(40, 64), dtype=np.uint8)
    devices = [PhotonicStrongPUF(seed=101, die_index=i) for i in range(6)]
    responses = [d.evaluate_batch(challenges, measurement=0) for d in devices]
    inter = [np.mean(responses[i] != responses[j])
             for i in range(6) for j in range(i + 1, 6)]
    intra = [np.mean(responses[i]
                     != devices[i].evaluate_batch(challenges, measurement=1))
             for i in range(6)]
    table_printer(
        "CLM-HD — photonic strong PUF (time-domain scrambler)",
        ["metric", "measured", "target"],
        [
            ("inter-device fractional HD", f"{np.mean(inter):.4f}",
             "close to 0.5"),
            ("intra-device fractional HD", f"{np.mean(intra):.4f}",
             "close to 0"),
            ("uniformity", f"{np.mean(responses[0]):.4f}", "~0.5"),
        ],
    )
    assert 0.35 < np.mean(inter) < 0.65
    assert np.mean(intra) < 0.08
