"""HA-CHAOS: the replicated verifier plane under a hostile campaign.

The acceptance bar for ``repro.service.ha``: a 64-device fleet drives
rounds through a 3-replica group behind seeded chaos transports
(drop + delay + duplicate on both legs) while the schedule kills the
primary **mid-round, twice** — and the campaign must end with

* zero device/registry desyncs,
* zero unresolved commit-log entries,
* no nonce issued twice across every replica incarnation
  (wiretap-asserted), and
* final device + registry state **bit-identical** to the same number
  of rounds against a single fault-free server.

The last point is the strongest: retries, duplicated frames, ghost
rounds, promotions, and crash-window recovery must together be
*exactly* invisible in durable authentication state.  (Nonce counters
differ by construction — partitioned epoch streams are the point — so
"state" here is what both deployments must agree on: every device's
rolling CRP chain and session count, and every registry record.)

Results land in ``BENCH_ha.json``; CI runs this file as a blocking
chaos lane.
"""

import asyncio
import json
import os
import time

import numpy as np

from repro.service import AuthService, FleetConfig, HAConfig
from repro.service.ha import KillEvent, ReplicaGroup, run_replicated_campaign
from repro.service.net import AuthClient, AuthServer, LegChaos, NetConfig

DEVICES = int(os.environ.get("HA_BENCH_DEVICES", "64"))
ROUNDS = int(os.environ.get("HA_BENCH_ROUNDS", "3"))
CHAOS_SEED = int(os.environ.get("HA_BENCH_CHAOS_SEED", "3309"))
HA_JSON = "BENCH_ha.json"

# noise_mw=0.0: the equality gate needs the CRP chain to be a pure
# function of (seed, rounds), never of how many retries chaos caused.
PUF = dict(challenge_bits=32, n_stages=4, response_bits=16, noise_mw=0.0)
# Short response deadline: a chaos-duplicated REQUEST that survives the
# server's retransmit dedup opens a ghost round; this bounds its stall.
NET = NetConfig(response_timeout_s=1.0, latency_budget_s=0.01)
CHAOS_LEG = LegChaos(drop=0.03, delay=0.10, duplicate=0.03)

_results = {}


def _record(**kwargs) -> None:
    _results.update({k: (float(f"{v:.4g}") if isinstance(v, float) else v)
                     for k, v in kwargs.items()})
    payload = dict(sorted(_results.items()))
    payload["devices"] = DEVICES
    payload["rounds"] = ROUNDS
    payload["chaos_seed"] = CHAOS_SEED
    with open(HA_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def fleet_config(**kwargs):
    return FleetConfig(n_devices=DEVICES, seed=3309, puf=PUF,
                       latency_budget_s=0.01, **kwargs)


async def run_single_server_baseline(total_rounds: int):
    """The same fleet, same rounds, one server, zero faults."""
    service = AuthService.provision(fleet_config())
    async with AuthServer(service, NET) as server:
        async with AuthClient.connect("127.0.0.1", server.port,
                                      response_timeout_s=30.0) as client:
            for _ in range(total_rounds):
                batch = await client.authenticate_batch(
                    service.device_list)
                assert batch.failures == {}
    # Let fire-and-forget finalizes settle before snapshotting state.
    await asyncio.sleep(0.05)
    return service


def durable_state(service_or_registry, devices):
    """The state both deployments must agree on, bit for bit."""
    registry = getattr(service_or_registry, "registry", service_or_registry)
    state = {}
    for device in devices:
        record = registry.record(device.device_id)
        state[device.device_id] = {
            "device": device.to_state(),
            "record_response": record.current_response.tobytes(),
            "record_sessions": int(record.sessions),
            "spot_used": record.crp_used.tobytes(),
        }
    return state


def test_ha_chaos_campaign(table_printer):
    """64 devices, 3 replicas, 2 mid-round kills, seeded chaos."""
    started = time.perf_counter()

    async def main():
        group = await ReplicaGroup.provision(
            fleet_config(ha=HAConfig(n_replicas=3, lease_timeout_s=0.4,
                                     heartbeat_interval_s=0.05)),
            net_config=NET, uplink=CHAOS_LEG, downlink=CHAOS_LEG,
            chaos_seed=CHAOS_SEED)
        try:
            report = await run_replicated_campaign(
                group, n_rounds=ROUNDS,
                kill_schedule=[
                    KillEvent(0, DEVICES // 3, 0),
                    KillEvent(1, DEVICES // 3, 1),
                ],
                verb_timeout_s=2.0)
            chaos_metrics = [replica.chaos.metrics.to_json()
                             for replica in group.replicas]
            state = durable_state(group, group.devices)
            nonces = group.assert_nonces_unique()
            return report, state, nonces, chaos_metrics, group.events
        finally:
            await group.aclose()

    report, ha_state, nonces, chaos_metrics, events = asyncio.run(main())
    elapsed = time.perf_counter() - started

    # -- the campaign itself must have been hostile and have converged
    assert report.kills == [(0, 0), (1, 1)], "both mid-round kills fired"
    assert report.promotions >= 2
    faults_injected = sum(m["frames_dropped"] + m["frames_duplicated"]
                          + m["frames_delayed"] for m in chaos_metrics)
    assert faults_injected > 0, "chaos must actually have fired"
    assert report.failures == {}, f"devices left behind: {report.failures}"
    assert report.accepted == DEVICES * (ROUNDS + 1)
    assert report.desynchronized == []
    assert report.commit_log_unresolved == 0
    assert report.nonces_unique and nonces == report.nonces_issued

    # -- bit-identical durable state vs a single fault-free server
    baseline_started = time.perf_counter()

    async def baseline():
        service = await run_single_server_baseline(ROUNDS + 1)
        state = durable_state(service, service.device_list)
        service.close()
        return state

    base_state = asyncio.run(baseline())
    baseline_elapsed = time.perf_counter() - baseline_started
    assert set(base_state) == set(ha_state)
    for device_id in base_state:
        assert base_state[device_id] == ha_state[device_id], (
            f"{device_id}: durable state diverged from the fault-free "
            "single-server run")

    table_printer(
        "HA-CHAOS campaign (64 devices, 3 replicas, 2 mid-round kills)",
        ["metric", "value"],
        [("devices", DEVICES),
         ("rounds (incl. reconcile)", ROUNDS + 1),
         ("accepted", report.accepted),
         ("attempts", report.attempts),
         ("failovers", report.failovers),
         ("promotions", report.promotions),
         ("nonces issued (all unique)", nonces),
         ("faults injected", faults_injected),
         ("campaign seconds", f"{elapsed:.2f}"),
         ("baseline seconds", f"{baseline_elapsed:.2f}")])
    _record(campaign_s=elapsed, baseline_s=baseline_elapsed,
            accepted=report.accepted, attempts=report.attempts,
            failovers=report.failovers, promotions=report.promotions,
            nonces_issued=nonces, faults_injected=faults_injected,
            desyncs=0, state_bit_identical=True)


def test_ha_attach_handoff_campaign(tmp_path, table_printer):
    """The on-disk crash path: promotion re-attaches the sharded root
    with journal replay, under the same chaos and kill schedule."""
    n_devices = min(DEVICES, 16)       # disk-bound; keep the lane fast
    started = time.perf_counter()

    async def main():
        config = FleetConfig(
            n_devices=n_devices, seed=3311, puf=PUF,
            latency_budget_s=0.01, registry_backend="sharded",
            storage_root=str(tmp_path / "fleet"),
            ha=HAConfig(n_replicas=3, lease_timeout_s=0.4,
                        heartbeat_interval_s=0.05, handoff="attach"))
        group = await ReplicaGroup.provision(
            config, net_config=NET, uplink=CHAOS_LEG, downlink=CHAOS_LEG,
            chaos_seed=CHAOS_SEED + 1)
        try:
            report = await run_replicated_campaign(
                group, n_rounds=2,
                kill_schedule=[KillEvent(0, n_devices // 3, 0),
                               KillEvent(1, n_devices // 3, 1)],
                verb_timeout_s=2.0)
            nonces = group.assert_nonces_unique()
            desyncs = group.desynchronized()
            return report, nonces, desyncs
        finally:
            await group.aclose()

    report, nonces, desyncs = asyncio.run(main())
    elapsed = time.perf_counter() - started
    assert report.failures == {}
    assert report.kills == [(0, 0), (1, 1)] and report.promotions >= 2
    assert desyncs == [] and report.commit_log_unresolved == 0
    assert report.nonces_unique
    table_printer(
        "HA-CHAOS attach handoff (sharded root, journal replay)",
        ["metric", "value"],
        [("devices", n_devices),
         ("accepted", report.accepted),
         ("promotions", report.promotions),
         ("nonces issued (all unique)", nonces),
         ("campaign seconds", f"{elapsed:.2f}")])
    _record(attach_campaign_s=elapsed, attach_accepted=report.accepted,
            attach_promotions=report.promotions, attach_desyncs=0)
