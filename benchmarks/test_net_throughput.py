"""NET-THR: the served fleet under concurrent socket load.

The acceptance bar for ``repro.service.net``: one :class:`AuthServer`
(one process, one event loop) sustains ``NET_BENCH_CONNS`` (default
1000) *simultaneous* ``AuthClient`` connections — every client holding
its device hardware and authenticating through the wire micro-round
path — and the recorded throughput clears ``NET_AUTHS_FLOOR``.
Latency is reported as p50/p99 of the per-request submit→settle time
under full load, plus a sequential single-connection round-trip
baseline.  Results land in ``BENCH_net.json``; CI runs a
smaller-concurrency configuration of the same harness as a blocking
lane with a matching floor.
"""

import asyncio
import json
import os
import statistics
import time

from repro.service import AuthService, FleetConfig
from repro.service.net import AuthClient, AuthServer, NetConfig

CONNS = int(os.environ.get("NET_BENCH_CONNS", "1000"))
WAVES = int(os.environ.get("NET_BENCH_WAVES", "3"))
AUTHS_FLOOR = float(os.environ.get("NET_AUTHS_FLOOR", "100.0"))
CONNECT_CHUNK = int(os.environ.get("NET_BENCH_CONNECT_CHUNK", "100"))
NET_JSON = "BENCH_net.json"

PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)

_results = {}


def _record(**kwargs) -> None:
    _results.update({k: (float(f"{v:.4g}") if isinstance(v, float) else v)
                     for k, v in kwargs.items()})
    payload = dict(sorted(_results.items()))
    payload["concurrent_connections"] = CONNS
    payload["waves"] = WAVES
    with open(NET_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _percentiles_ms(samples):
    ordered = sorted(samples)
    return (statistics.median(ordered) * 1e3,
            ordered[min(len(ordered) - 1,
                        int(0.99 * len(ordered)))] * 1e3)


def test_net_concurrent_load(table_printer):
    """1000+ live connections authenticating in concurrent waves."""
    service = AuthService.provision(FleetConfig(
        n_devices=CONNS, seed=3302, puf=PUF, latency_budget_s=0.05))
    config = NetConfig(response_timeout_s=120.0, drain_timeout_s=30.0,
                       pending_high=CONNS + 1, pending_low=CONNS // 2)

    async def main():
        async with AuthServer(service, config) as server:
            clients = []
            t_connect = time.perf_counter()
            for base in range(0, CONNS, CONNECT_CHUNK):
                chunk = await asyncio.gather(*(
                    AuthClient.connect("127.0.0.1", server.port,
                                       response_timeout_s=120.0)
                    for __ in range(base,
                                    min(base + CONNECT_CHUNK, CONNS))))
                clients.extend(chunk)
            connect_s = time.perf_counter() - t_connect
            assert len(clients) == CONNS

            async def one_auth(client, device):
                start = time.perf_counter()
                ticket = await client.submit(device)
                await ticket.wait(120.0)
                assert ticket.accepted, ticket.failure
                return time.perf_counter() - start

            latencies = []
            t_load = time.perf_counter()
            for __ in range(WAVES):
                latencies.extend(await asyncio.gather(*(
                    one_auth(client, device) for client, device
                    in zip(clients, service.device_list))))
            load_s = time.perf_counter() - t_load
            metrics = server.metrics
            for client in clients:
                await client.aclose()
        return connect_s, load_s, latencies, metrics

    connect_s, load_s, latencies, metrics = asyncio.run(main())
    total_auths = CONNS * WAVES
    auths_per_sec = total_auths / load_s
    p50_ms, p99_ms = _percentiles_ms(latencies)
    table_printer(
        f"NET-THR — concurrent load ({CONNS} connections, "
        f"{WAVES} waves)",
        ["measure", "value"],
        [
            ("connections", CONNS),
            ("connect time", f"{connect_s:.2f} s"),
            ("auths completed", total_auths),
            ("auths/s (sustained)", f"{auths_per_sec:.0f}"),
            ("latency p50", f"{p50_ms:.1f} ms"),
            ("latency p99", f"{p99_ms:.1f} ms"),
            ("micro-rounds", metrics.micro_rounds),
            ("reads paused (backpressure)", metrics.reads_paused),
        ],
    )
    _record(connect_s=connect_s, load_s=load_s,
            auths_total=total_auths, auths_per_sec=auths_per_sec,
            latency_p50_ms=p50_ms, latency_p99_ms=p99_ms,
            micro_rounds=int(metrics.micro_rounds),
            auths_floor=AUTHS_FLOOR)
    assert metrics.auths_accepted == total_auths
    assert auths_per_sec >= AUTHS_FLOOR, (
        f"served fleet sustained only {auths_per_sec:.0f} auths/s over "
        f"{CONNS} concurrent connections (floor {AUTHS_FLOOR})"
    )


def test_net_single_connection_latency(table_printer):
    """Sequential flush-per-auth round trips: the no-contention baseline."""
    repeats = int(os.environ.get("NET_BENCH_LATENCY_REPEATS", "50"))
    service = AuthService.provision(FleetConfig(
        n_devices=1, seed=3303, puf=PUF))
    device = service.device_list[0]

    async def main():
        samples = []
        async with AuthServer(service) as server:
            async with AuthClient.connect("127.0.0.1",
                                          server.port) as client:
                await client.authenticate(device, flush=True)  # warm
                for __ in range(repeats):
                    start = time.perf_counter()
                    ticket = await client.authenticate(device, flush=True)
                    assert ticket.accepted
                    samples.append(time.perf_counter() - start)
        return samples

    samples = asyncio.run(main())
    p50_ms, p99_ms = _percentiles_ms(samples)
    table_printer(
        f"NET-THR — single-connection round trip ({repeats} auths)",
        ["measure", "value"],
        [("round-trip p50", f"{p50_ms:.2f} ms"),
         ("round-trip p99", f"{p99_ms:.2f} ms")],
    )
    _record(single_conn_p50_ms=p50_ms, single_conn_p99_ms=p99_ms)
