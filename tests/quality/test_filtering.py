"""Tests for the Vinagrero threshold-filtering algorithm (Fig. 3)."""

import math

import numpy as np
import pytest

from repro.puf import PUFFamily, ROPUF
from repro.puf.photonic_weak import photonic_weak_family
from repro.quality.filtering import (
    ThresholdFilter,
    aliasing_reliability_sweep,
    collect_population_data,
    recommend_band,
)


@pytest.fixture(scope="module")
def ro_population():
    family = PUFFamily(lambda die: ROPUF(n_ros=256, seed=30, die_index=die), 16)
    return collect_population_data(family, n_measurements=5)


class TestThresholdFilter:
    def test_band_selection(self):
        f = ThresholdFilter(low=1.0, high=3.0)
        mask = f.select(np.array([0.5, -2.0, 2.5, 4.0, -0.1]))
        assert mask.tolist() == [False, True, True, False, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdFilter(low=-1.0)
        with pytest.raises(ValueError):
            ThresholdFilter(low=2.0, high=1.0)

    def test_default_high_is_open(self):
        f = ThresholdFilter(low=0.0)
        assert f.select(np.array([1e9])).all()


class TestSweep:
    def test_zero_threshold_keeps_everything(self, ro_population):
        margins, bits = ro_population
        rows = aliasing_reliability_sweep(margins, bits, [0.0])
        assert rows[0].surviving_fraction == 1.0

    def test_reliability_monotonic_up(self, ro_population):
        margins, bits = ro_population
        thresholds = np.linspace(0, np.abs(margins).std(), 6)
        rows = aliasing_reliability_sweep(margins, bits, thresholds)
        reliabilities = [r.reliability for r in rows if not math.isnan(r.reliability)]
        assert reliabilities[-1] >= reliabilities[0]

    def test_entropy_decreases_at_extreme_thresholds(self, ro_population):
        # The Fig. 3 effect: extreme margins are dominated by the
        # systematic layout component and alias across devices.
        margins, bits = ro_population
        low = aliasing_reliability_sweep(margins, bits, [0.0])[0]
        high = aliasing_reliability_sweep(
            margins, bits, [2.5 * np.abs(margins).std()]
        )[0]
        assert high.aliasing_entropy < low.aliasing_entropy

    def test_surviving_fraction_decreases(self, ro_population):
        margins, bits = ro_population
        thresholds = np.linspace(0, np.abs(margins).max(), 8)
        rows = aliasing_reliability_sweep(margins, bits, thresholds)
        fractions = [r.surviving_fraction for r in rows]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))

    def test_shape_mismatch_rejected(self, ro_population):
        margins, bits = ro_population
        with pytest.raises(ValueError):
            aliasing_reliability_sweep(margins[:, :-1], bits, [0.0])

    def test_band_pass_variant(self, ro_population):
        # An upper bound excludes the aliased extreme margins.
        margins, bits = ro_population
        sigma = np.abs(margins).std()
        open_rows = aliasing_reliability_sweep(margins, bits, [0.5 * sigma])
        banded = aliasing_reliability_sweep(margins, bits, [0.5 * sigma],
                                            high=2.0 * sigma)
        assert banded[0].aliasing_entropy >= open_rows[0].aliasing_entropy - 1e-9


class TestRecommendBand:
    def test_finds_tradeoff(self, ro_population):
        margins, bits = ro_population
        thresholds = np.linspace(0, 2 * np.abs(margins).std(), 10)
        rows = aliasing_reliability_sweep(margins, bits, thresholds)
        band = recommend_band(rows, min_entropy=0.5, min_reliability=0.9)
        assert band is not None
        assert band[0] <= band[1]

    def test_impossible_constraints_return_none(self, ro_population):
        margins, bits = ro_population
        rows = aliasing_reliability_sweep(margins, bits, [0.0])
        assert recommend_band(rows, min_entropy=1.1) is None


class TestPhotonicPopulation:
    def test_photocurrent_margins_collected(self):
        # The photonic analogue: margins are photocurrent differences.
        family = photonic_weak_family(6, seed=31, n_rings=16, n_wavelengths=2)
        margins, bits = collect_population_data(family, n_measurements=3)
        assert margins.shape == (6, 16)
        assert bits.shape == (6, 3, 16)
        rows = aliasing_reliability_sweep(margins, bits,
                                          [0.0, np.abs(margins).mean()])
        assert rows[0].surviving_fraction == 1.0
        assert rows[1].surviving_fraction < 1.0
