"""Tests for temperature compensation, majority voting, dark-bit masking."""

import numpy as np
import pytest

from repro.puf import PUFEnvironment, SRAMPUF
from repro.quality.compensation import (
    DarkBitMask,
    MajorityVoteReader,
    TemperatureController,
    TemperatureSensor,
)


class TestTemperatureSensor:
    def test_reads_near_truth(self):
        sensor = TemperatureSensor(sigma_k=0.1)
        env = PUFEnvironment(temperature_c=40.0)
        readings = [sensor.read(env, measurement=m) for m in range(50)]
        assert np.mean(readings) == pytest.approx(40.0, abs=0.1)

    def test_deterministic_per_measurement(self):
        sensor = TemperatureSensor()
        env = PUFEnvironment(temperature_c=30.0)
        assert sensor.read(env, 3) == sensor.read(env, 3)


class TestTemperatureController:
    def test_rejection(self):
        controller = TemperatureController(rejection=0.9)
        env = PUFEnvironment(temperature_c=45.0)
        regulated = controller.regulate(env)
        assert regulated.temperature_c == pytest.approx(27.0)

    def test_saturation(self):
        controller = TemperatureController(rejection=1.0, max_delta_k=10.0)
        env = PUFEnvironment(temperature_c=60.0)  # 35 K over setpoint
        regulated = controller.regulate(env)
        # 10 K actuated away, 25 K of excursion remain.
        assert regulated.temperature_c == pytest.approx(50.0)

    def test_no_excursion_no_action(self):
        controller = TemperatureController()
        env = PUFEnvironment(temperature_c=25.0)
        assert controller.regulate(env).temperature_c == 25.0


class TestMajorityVote:
    def test_odd_votes_required(self):
        with pytest.raises(ValueError):
            MajorityVoteReader(SRAMPUF(n_cells=64, seed=1), n_votes=4)

    def test_voting_reduces_error(self):
        puf = SRAMPUF(n_cells=8192, seed=2, sigma_noise_mv=12.0)
        reference = puf.power_up(PUFEnvironment(noise_scale=0.0), measurement=0)
        raw_errors = np.mean([
            np.mean(puf.power_up(measurement=m) != reference) for m in range(1, 6)
        ])
        reader = MajorityVoteReader(puf, n_votes=9)
        voted = reader.read(base_measurement=100)
        voted_error = np.mean(voted != reference)
        assert voted_error < raw_errors


class TestDarkBitMask:
    def test_enrollment_masks_unstable_bits(self):
        puf = SRAMPUF(n_cells=2048, seed=3, sigma_noise_mv=10.0)
        mask = DarkBitMask.enroll(puf, n_measurements=9)
        assert 0 < mask.n_stable < 2048

    def test_masked_read_is_more_stable(self):
        puf = SRAMPUF(n_cells=4096, seed=4, sigma_noise_mv=10.0)
        mask = DarkBitMask.enroll(puf, n_measurements=9)
        reference = mask.stable_reference()
        errors = []
        for m in range(20, 25):
            masked = mask.apply(puf.power_up(measurement=m))
            errors.append(np.mean(masked != reference))
        full_reference = puf.power_up(PUFEnvironment(noise_scale=0.0), measurement=0)
        full_errors = [
            np.mean(puf.power_up(measurement=m) != full_reference)
            for m in range(30, 35)
        ]
        assert np.mean(errors) < np.mean(full_errors)

    def test_apply_length_checked(self):
        puf = SRAMPUF(n_cells=256, seed=5)
        mask = DarkBitMask.enroll(puf, n_measurements=3)
        with pytest.raises(ValueError):
            mask.apply(np.zeros(100, dtype=np.uint8))

    def test_enrollment_needs_two(self):
        with pytest.raises(ValueError):
            DarkBitMask.enroll(SRAMPUF(n_cells=64, seed=6), n_measurements=1)

    def test_mask_shape_validation(self):
        with pytest.raises(ValueError):
            DarkBitMask(np.ones(4, dtype=bool), np.zeros(5, dtype=np.uint8))
