"""Tests for ML modeling attacks: arbiter must fall, photonic must resist more."""

import numpy as np
import pytest

from repro.attacks.modeling import (
    LogisticRegressionAttack,
    MLPAttack,
    attack_curve,
    collect_crps,
    raw_features,
)
from repro.puf import (
    ArbiterPUF,
    ChallengeEncryptedPUF,
    PhotonicStrongPUF,
    XORArbiterPUF,
)
from repro.puf.arbiter import parity_features


class TestFeatureMaps:
    def test_raw_features_shape(self):
        challenges = np.zeros((5, 16), dtype=np.uint8)
        assert raw_features(challenges).shape == (5, 17)

    def test_raw_features_signs(self):
        features = raw_features(np.array([[0, 1]], dtype=np.uint8))[0]
        assert features.tolist() == [1.0, -1.0, 1.0]


class TestLogisticRegression:
    def test_fit_required_before_predict(self):
        attack = LogisticRegressionAttack()
        with pytest.raises(RuntimeError):
            attack.predict(np.zeros((1, 64), dtype=np.uint8))

    def test_shape_mismatch_rejected(self):
        attack = LogisticRegressionAttack()
        with pytest.raises(ValueError):
            attack.fit(np.zeros((5, 64), dtype=np.uint8), np.zeros(4))

    def test_learns_linear_function(self):
        # A noise-free arbiter PUF is exactly linear in parity space.
        puf = ArbiterPUF(n_stages=32, seed=1, sigma_noise=0.0)
        challenges, responses = collect_crps(puf, 3000, seed=0)
        attack = LogisticRegressionAttack(parity_features).fit(
            challenges[:2500], responses[:2500]
        )
        assert attack.accuracy(challenges[2500:], responses[2500:]) > 0.95


class TestArbiterFalls:
    def test_accuracy_grows_with_data(self):
        puf = ArbiterPUF(n_stages=64, seed=2)
        points = attack_curve(
            puf, lambda: LogisticRegressionAttack(parity_features),
            [50, 500, 3000], n_test=800,
        )
        accuracies = [p.accuracy for p in points]
        assert accuracies[-1] > accuracies[0]
        assert accuracies[-1] > 0.95  # the paper's Sec. IV premise [28]


class TestXORArbiterResists:
    def test_plain_lr_fails_against_xor4(self):
        puf = XORArbiterPUF(n_stages=64, k=4, seed=3)
        points = attack_curve(
            puf, lambda: LogisticRegressionAttack(parity_features),
            [3000], n_test=600,
        )
        assert points[0].accuracy < 0.65


class TestPhotonicResists:
    @pytest.fixture(scope="class")
    def photonic(self):
        return PhotonicStrongPUF(challenge_bits=64, response_bits=8, seed=4)

    def test_lr_accuracy_below_arbiter(self, photonic):
        arbiter = ArbiterPUF(n_stages=64, seed=4)
        arbiter_acc = attack_curve(
            arbiter, lambda: LogisticRegressionAttack(parity_features),
            [2000], n_test=500,
        )[0].accuracy
        photonic_acc = attack_curve(
            photonic, lambda: LogisticRegressionAttack(raw_features),
            [2000], n_test=400,
        )[0].accuracy
        assert photonic_acc < arbiter_acc

    def test_challenge_encryption_pushes_to_chance(self, photonic):
        protected = ChallengeEncryptedPUF(photonic, key=b"weak-puf-derived-key")
        accuracy = attack_curve(
            protected, lambda: LogisticRegressionAttack(raw_features),
            [1500], n_test=400,
        )[0].accuracy
        assert accuracy < 0.62  # indistinguishable from guessing, roughly


class TestMLP:
    def test_learns_linear_target_in_good_features(self):
        # Implementation sanity: given the parity features (where the
        # arbiter is linear) the MLP must learn it like the LR does.
        puf = ArbiterPUF(n_stages=16, seed=5, sigma_noise=0.0)
        challenges, responses = collect_crps(puf, 4000, seed=1)
        attack = MLPAttack(parity_features, hidden=24, epochs=150, seed=0).fit(
            challenges[:3500], responses[:3500]
        )
        assert attack.accuracy(challenges[3500:], responses[3500:]) > 0.9

    def test_raw_bits_hide_the_arbiter_structure(self):
        # The same MLP on raw challenge bits fails: the arbiter is a
        # high-order parity interaction in that basis.  This is exactly
        # why feature knowledge matters for modeling attacks.
        puf = ArbiterPUF(n_stages=16, seed=5, sigma_noise=0.0)
        challenges, responses = collect_crps(puf, 4000, seed=1)
        attack = MLPAttack(raw_features, hidden=24, epochs=150, seed=0).fit(
            challenges[:3500], responses[:3500]
        )
        assert attack.accuracy(challenges[3500:], responses[3500:]) < 0.75

    def test_fit_required(self):
        with pytest.raises(RuntimeError):
            MLPAttack().predict(np.zeros((1, 8), dtype=np.uint8))


class TestCollectCrps:
    def test_shapes(self):
        puf = ArbiterPUF(n_stages=32, seed=6)
        challenges, responses = collect_crps(puf, 100, seed=2)
        assert challenges.shape == (100, 32)
        assert responses.shape == (100,)

    def test_deterministic(self):
        puf = ArbiterPUF(n_stages=32, seed=7)
        a = collect_crps(puf, 50, seed=3)
        b = collect_crps(puf, 50, seed=3)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])
