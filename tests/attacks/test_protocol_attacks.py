"""Tests asserting every protocol attack is defeated."""

import pytest

from repro.attacks.protocol_attacks import (
    desynchronization_attack,
    impersonation_attack,
    naive_infection_attack,
    relocation_attack,
    replay_attack,
    tamper_attack,
)
from repro.protocols.attestation import AttestationVerifier
from repro.protocols.mutual_auth import provision
from repro.system.soc import DeviceSoC, SoCConfig


@pytest.fixture()
def auth_parties():
    soc = DeviceSoC(SoCConfig(seed=51, memory_size=8 * 1024))
    return provision(soc, seed=51)


@pytest.fixture()
def attestation_setup():
    soc = DeviceSoC(SoCConfig(seed=52, memory_size=8 * 1024))
    verifier = AttestationVerifier(
        soc.memory.image(), soc.strong_puf,
        chunk_size=soc.memory.chunk_size, soc_model=soc,
    )
    return soc, verifier


class TestMutualAuthAttacks:
    def test_replay_defeated(self, auth_parties):
        device, verifier = auth_parties
        outcome = replay_attack(device, verifier)
        assert not outcome.succeeded, outcome.detail

    def test_tamper_defeated(self, auth_parties):
        device, verifier = auth_parties
        outcome = tamper_attack(device, verifier)
        assert not outcome.succeeded, outcome.detail

    def test_impersonation_defeated(self, auth_parties):
        device, verifier = auth_parties
        outcome = impersonation_attack(
            verifier, device.soc.strong_puf.challenge_bits
        )
        assert not outcome.succeeded, outcome.detail

    def test_desynchronization_recovered(self, auth_parties):
        device, verifier = auth_parties
        outcome = desynchronization_attack(device, verifier)
        assert not outcome.succeeded, outcome.detail


class TestAttestationAttacks:
    def test_naive_infection_defeated(self, attestation_setup):
        soc, verifier = attestation_setup
        outcome = naive_infection_attack(soc, verifier)
        assert not outcome.succeeded, outcome.detail

    def test_relocation_defeated(self, attestation_setup):
        soc, verifier = attestation_setup
        outcome = relocation_attack(soc, verifier)
        assert not outcome.succeeded, outcome.detail

    def test_small_relocation_also_caught(self, attestation_setup):
        # Even hiding two chunks must exceed the temporal budget.
        soc, verifier = attestation_setup
        outcome = relocation_attack(soc, verifier, n_infected_chunks=2)
        assert not outcome.succeeded, outcome.detail
