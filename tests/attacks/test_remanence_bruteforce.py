"""Tests for remanence-decay attacks and guessing-cost estimators."""

import numpy as np
import pytest

from repro.attacks.brute_force import (
    guessing_cost,
    online_guess_success_probability,
    response_entropy_bits,
)
from repro.attacks.remanence import (
    photonic_remanence_attempt,
    sram_remanence_sweep,
)
from repro.puf import PhotonicStrongPUF, SRAMPUF


class TestSramRemanence:
    @pytest.fixture(scope="class")
    def setup(self):
        puf = SRAMPUF(n_cells=2048, seed=40)
        secret = np.random.default_rng(1).integers(0, 2, 2048, dtype=np.uint8)
        return puf, secret

    def test_short_off_time_leaks_secret(self, setup):
        puf, secret = setup
        points = sram_remanence_sweep(puf, secret, [0.001])
        assert points[0].secret_recovery > 0.95

    def test_long_off_time_erases_secret(self, setup):
        puf, secret = setup
        points = sram_remanence_sweep(puf, secret, [30.0])
        assert points[0].secret_recovery < 0.6
        assert points[0].fingerprint_contamination > 0.9

    def test_recovery_decays_monotonically(self, setup):
        puf, secret = setup
        points = sram_remanence_sweep(puf, secret, [0.01, 0.1, 1.0, 10.0])
        recoveries = [p.secret_recovery for p in points]
        assert all(a >= b - 0.02 for a, b in zip(recoveries, recoveries[1:]))


class TestPhotonicRemanence:
    def test_immediate_read_succeeds(self):
        puf = PhotonicStrongPUF(challenge_bits=32, response_bits=8, seed=41)
        challenge = np.random.default_rng(2).integers(0, 2, 32, dtype=np.uint8)
        # Zero delay: attacker reads the live response (they are at the PD).
        accuracy = photonic_remanence_attempt(puf, challenge, delay_s=0.0)
        assert accuracy > 0.9

    def test_microsecond_delay_is_chance(self):
        # The paper's point: after < 100 ns there is nothing left to read.
        puf = PhotonicStrongPUF(challenge_bits=32, response_bits=8, seed=41)
        challenge = np.random.default_rng(3).integers(0, 2, 32, dtype=np.uint8)
        accuracy = photonic_remanence_attempt(puf, challenge, delay_s=1e-6)
        assert 0.2 < accuracy < 0.8  # statistically chance for 8 bits

    def test_decay_between_extremes(self):
        puf = PhotonicStrongPUF(challenge_bits=32, response_bits=8, seed=42)
        challenge = np.random.default_rng(4).integers(0, 2, 32, dtype=np.uint8)
        live = photonic_remanence_attempt(puf, challenge, 0.0, measurement=0)
        dead = photonic_remanence_attempt(puf, challenge, 1e-3, measurement=0)
        assert live >= dead


class TestGuessingCost:
    def test_entropy_of_unbiased_corpus(self):
        responses = np.random.default_rng(5).integers(0, 2, size=(2000, 64))
        entropy = response_entropy_bits(responses)
        assert 60 < entropy <= 64

    def test_biased_corpus_loses_entropy(self):
        rng = np.random.default_rng(6)
        biased = (rng.random((2000, 64)) < 0.9).astype(np.uint8)
        assert response_entropy_bits(biased) < 40

    def test_raw_length_mode(self):
        responses = np.zeros((10, 64), dtype=np.uint8)
        assert response_entropy_bits(responses, account_bias=False) == 64.0

    def test_cost_scaling(self):
        cost = guessing_cost(64.0, guesses_per_second=1e9)
        assert cost.expected_guesses == pytest.approx(2.0**63)
        assert cost.seconds_at_rate == pytest.approx(2.0**63 / 1e9)

    def test_negative_entropy_rejected(self):
        with pytest.raises(ValueError):
            guessing_cost(-1.0)

    def test_online_guessing_bounded(self):
        assert online_guess_success_probability(10.0, 0) == 0.0
        assert online_guess_success_probability(10.0, 1024) == 1.0
        assert online_guess_success_probability(10.0, 512) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            online_guess_success_probability(10.0, -1)
