"""Tests for side-channel simulation: electronic leaks, photonic doesn't."""

import numpy as np
import pytest

from repro.attacks.side_channel import (
    ELECTRONIC_LEAKAGE,
    PHOTONIC_LEAKAGE,
    LeakageModel,
    compare_technologies,
    hamming_weight_recovery,
    leakage_correlation,
    simulate_traces,
)


@pytest.fixture(scope="module")
def responses():
    return np.random.default_rng(0).integers(0, 2, size=(400, 32), dtype=np.uint8)


class TestTraceSimulation:
    def test_shape(self, responses):
        traces = simulate_traces(responses, ELECTRONIC_LEAKAGE)
        assert traces.shape == (400, ELECTRONIC_LEAKAGE.n_samples)

    def test_deterministic(self, responses):
        a = simulate_traces(responses, ELECTRONIC_LEAKAGE, seed=1)
        b = simulate_traces(responses, ELECTRONIC_LEAKAGE, seed=1)
        assert np.array_equal(a, b)

    def test_leak_raises_trace_with_weight(self):
        light = np.zeros((50, 32), dtype=np.uint8)
        heavy = np.ones((50, 32), dtype=np.uint8)
        model = LeakageModel(leak_per_bit=1.0, noise_sigma=0.1)
        mid = model.n_samples // 2
        light_traces = simulate_traces(light, model, seed=2)
        heavy_traces = simulate_traces(heavy, model, seed=2)
        assert heavy_traces[:, mid].mean() > light_traces[:, mid].mean() + 10


class TestCorrelation:
    def test_electronic_strongly_correlated(self, responses):
        traces = simulate_traces(responses, ELECTRONIC_LEAKAGE)
        assert leakage_correlation(traces, responses) > 0.8

    def test_photonic_weakly_correlated(self, responses):
        traces = simulate_traces(responses, PHOTONIC_LEAKAGE)
        assert leakage_correlation(traces, responses) < 0.3

    def test_constant_weight_gives_zero(self):
        constant = np.ones((50, 8), dtype=np.uint8)
        traces = simulate_traces(constant, ELECTRONIC_LEAKAGE)
        assert leakage_correlation(traces, constant) == 0.0

    def test_count_mismatch_rejected(self, responses):
        traces = simulate_traces(responses, ELECTRONIC_LEAKAGE)
        with pytest.raises(ValueError):
            leakage_correlation(traces[:-1], responses)


class TestRecovery:
    def test_electronic_recovers_weights(self, responses):
        # Exact integer recovery of a 32-bit Hamming weight is noise
        # limited (~1 weight unit of estimator noise): well above the
        # ~14 % chance level but not near 1.
        traces = simulate_traces(responses, ELECTRONIC_LEAKAGE)
        accuracy = hamming_weight_recovery(traces, responses)
        assert accuracy > 0.25

    def test_photonic_recovery_near_chance(self, responses):
        traces = simulate_traces(responses, PHOTONIC_LEAKAGE)
        accuracy = hamming_weight_recovery(traces, responses)
        weights = responses.sum(axis=1)
        values, counts = np.unique(weights, return_counts=True)
        chance = counts.max() / weights.size
        assert accuracy < chance + 0.15


class TestComparison:
    def test_electronic_beats_photonic(self, responses):
        electronic, photonic = compare_technologies(responses)
        assert electronic.technology == "electronic"
        assert photonic.technology == "photonic"
        assert electronic.correlation > photonic.correlation + 0.4
        assert electronic.hw_recovery_accuracy > photonic.hw_recovery_accuracy
