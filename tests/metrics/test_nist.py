"""Tests for the NIST SP 800-22-style suite.

Strategy: ideal random streams (hash-expanded) must pass every test;
pathological streams (constant, alternating, heavily biased) must fail
the tests sensitive to their defect.  Where SP 800-22 publishes a worked
example, we check the p-value against it.
"""

import hashlib

import numpy as np
import pytest

from repro.metrics.nist import (
    approximate_entropy_test,
    block_frequency_test,
    cumulative_sums_test,
    dft_test,
    longest_run_test,
    monobit_test,
    pass_fraction,
    run_suite,
    runs_test,
    serial_test,
)


def random_bits(n: int, seed: int = 0) -> np.ndarray:
    """Cryptographically scrambled bits (SHA-256 in counter mode)."""
    out = bytearray()
    counter = 0
    while len(out) * 8 < n:
        out += hashlib.sha256(f"{seed}:{counter}".encode()).digest()
        counter += 1
    return np.unpackbits(np.frombuffer(bytes(out), dtype=np.uint8))[:n]


GOOD = random_bits(4096)
CONSTANT = np.ones(4096, dtype=np.uint8)
ALTERNATING = np.tile([0, 1], 2048).astype(np.uint8)
BIASED = (np.arange(4096) % 4 != 0).astype(np.uint8)  # 75% ones


class TestMonobit:
    def test_good_passes(self):
        assert monobit_test(GOOD).passed

    def test_constant_fails(self):
        assert not monobit_test(CONSTANT).passed

    def test_biased_fails(self):
        assert not monobit_test(BIASED).passed

    def test_known_vector(self):
        # SP 800-22 sec. 2.1.8 example: 1011010101 -> p = 0.527089.
        bits = [1, 0, 1, 1, 0, 1, 0, 1, 0, 1]
        result = monobit_test(np.tile(bits, 4)[:32])  # length >= 32 variant
        assert 0.0 <= result.p_value <= 1.0

    def test_exact_example(self):
        # Exact SP 800-22 example needs the raw 10-bit input; relax the
        # minimum via direct computation.
        import math

        from scipy.special import erfc

        bits = np.array([1, 0, 1, 1, 0, 1, 0, 1, 0, 1])
        s = abs(2 * bits.sum() - bits.size) / math.sqrt(bits.size)
        assert erfc(s / math.sqrt(2)) == pytest.approx(0.527089, abs=1e-6)


class TestBlockFrequency:
    def test_good_passes(self):
        assert block_frequency_test(GOOD).passed

    def test_clustered_fails(self):
        clustered = np.concatenate([np.ones(2048), np.zeros(2048)]).astype(np.uint8)
        assert not block_frequency_test(clustered, block_size=128).passed

    def test_alternating_passes_block_frequency(self):
        # Alternating bits are perfectly balanced per block: this test
        # cannot see the correlation defect (runs/serial catch it).
        assert block_frequency_test(ALTERNATING).passed


class TestRuns:
    def test_good_passes(self):
        assert runs_test(GOOD).passed

    def test_alternating_fails(self):
        assert not runs_test(ALTERNATING).passed

    def test_biased_prerequisite_fails(self):
        assert runs_test(BIASED).p_value == 0.0

    def test_known_vector(self):
        # SP 800-22 sec. 2.3.8 example: 1001101011, V=7, p = 0.147232.
        import math

        from scipy.special import erfc

        bits = np.array([1, 0, 0, 1, 1, 0, 1, 0, 1, 1])
        pi = bits.mean()
        v = 1 + int(np.count_nonzero(bits[1:] != bits[:-1]))
        num = abs(v - 2 * bits.size * pi * (1 - pi))
        den = 2 * math.sqrt(2 * bits.size) * pi * (1 - pi)
        assert erfc(num / den) == pytest.approx(0.147232, abs=1e-6)


class TestLongestRun:
    def test_good_passes(self):
        assert longest_run_test(GOOD).passed

    def test_long_runs_fail(self):
        blocks = np.tile(np.concatenate([np.ones(7), np.zeros(1)]), 512)
        assert not longest_run_test(blocks.astype(np.uint8)).passed

    def test_minimum_length_enforced(self):
        with pytest.raises(ValueError):
            longest_run_test(np.ones(64, dtype=np.uint8))


class TestDFT:
    def test_good_passes(self):
        assert dft_test(GOOD).passed

    def test_periodic_fails(self):
        periodic = np.tile([1, 1, 0, 0, 1, 0, 1, 0], 512).astype(np.uint8)
        assert not dft_test(periodic).passed


class TestSerial:
    def test_good_passes(self):
        assert serial_test(GOOD).passed

    def test_alternating_fails(self):
        assert not serial_test(ALTERNATING).passed

    def test_m_validation(self):
        with pytest.raises(ValueError):
            serial_test(GOOD, m=1)


class TestApproximateEntropy:
    def test_good_passes(self):
        assert approximate_entropy_test(GOOD).passed

    def test_alternating_fails(self):
        assert not approximate_entropy_test(ALTERNATING).passed


class TestCumulativeSums:
    def test_good_passes(self):
        assert cumulative_sums_test(GOOD).passed

    def test_drift_fails(self):
        assert not cumulative_sums_test(BIASED).passed

    def test_reverse_mode(self):
        assert cumulative_sums_test(GOOD, forward=False).passed


class TestSuite:
    def test_good_stream_passes_everything(self):
        results = run_suite(GOOD)
        assert len(results) == 8
        assert pass_fraction(results) == 1.0

    def test_constant_stream_fails_most(self):
        results = run_suite(CONSTANT)
        assert pass_fraction(results) < 0.5

    def test_short_stream_skips_gracefully(self):
        results = run_suite(random_bits(100, seed=3))  # < 128: longest_run skips
        assert 0 < len(results) < 8

    def test_pass_fraction_empty_rejected(self):
        with pytest.raises(ValueError):
            pass_fraction([])

    def test_different_seeds_robust(self):
        # Guard against a fluky GOOD stream: several independent streams
        # must pass at least 7 of 8 tests each.
        for seed in range(1, 5):
            results = run_suite(random_bits(4096, seed))
            assert pass_fraction(results) >= 7 / 8


class TestLongestRunVectorization:
    """The cumulative-ops longest-run kernel vs the per-bit loop."""

    @staticmethod
    def _longest_run_loop(block):
        longest = current = 0
        for bit in block:
            current = current + 1 if bit else 0
            longest = max(longest, current)
        return longest

    def test_matches_loop_reference(self):
        from repro.metrics.nist import _longest_runs
        rng = np.random.default_rng(17)
        for n_blocks, width in [(16, 8), (40, 128), (3, 1)]:
            blocks = rng.integers(0, 2, size=(n_blocks, width),
                                  dtype=np.uint8)
            expected = [self._longest_run_loop(block) for block in blocks]
            assert np.array_equal(_longest_runs(blocks), expected)

    def test_edge_blocks(self):
        from repro.metrics.nist import _longest_runs
        blocks = np.array([
            [0, 0, 0, 0], [1, 1, 1, 1], [1, 0, 1, 0], [0, 1, 1, 0],
        ], dtype=np.uint8)
        assert _longest_runs(blocks).tolist() == [0, 4, 1, 2]

    def test_p_value_matches_published_vector(self):
        # SP 800-22 worked example for the 128-bit longest-run stream.
        bits = np.array([int(b) for b in (
            "11001100000101010110110001001100111000000000001001"
            "00110101010001000100111101011010000000110101111100"
            "1100111001101101100010110010"
        )], dtype=np.uint8)
        result = longest_run_test(bits)
        assert result.p_value == pytest.approx(0.180609, abs=1e-4)
