"""Tests for entropy estimators."""

import numpy as np
import pytest

from repro.metrics.entropy import (
    autocorrelation,
    collision_entropy_bits,
    markov_min_entropy,
    min_entropy_bits,
    shannon_entropy_bits,
)


class TestShannon:
    def test_balanced_is_one(self):
        assert shannon_entropy_bits([0, 1] * 100) == pytest.approx(1.0)

    def test_constant_is_zero(self):
        assert shannon_entropy_bits([1] * 50) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            shannon_entropy_bits([])


class TestMinEntropy:
    def test_balanced(self):
        assert min_entropy_bits([0, 1] * 100) == pytest.approx(1.0)

    def test_biased(self):
        bits = [1] * 75 + [0] * 25
        assert min_entropy_bits(bits) == pytest.approx(-np.log2(0.75))

    def test_le_shannon(self):
        rng = np.random.default_rng(0)
        bits = (rng.random(1000) < 0.7).astype(int)
        assert min_entropy_bits(bits) <= shannon_entropy_bits(bits) + 1e-12


class TestMarkov:
    def test_alternating_sequence_penalised(self):
        # 0101... is balanced marginally but fully predictable.
        bits = [0, 1] * 500
        assert markov_min_entropy(bits) < 0.1

    def test_random_sequence_near_one(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 20_000)
        assert markov_min_entropy(bits) > 0.9

    def test_needs_two_bits(self):
        with pytest.raises(ValueError):
            markov_min_entropy([1])


class TestAutocorrelation:
    def test_random_is_small(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 10_000)
        assert np.max(np.abs(autocorrelation(bits, 8))) < 0.05

    def test_alternating_is_negative_at_lag_one(self):
        acf = autocorrelation([0, 1] * 500, 2)
        assert acf[0] < -0.9

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation([0, 1, 0], max_lag=5)

    def test_constant_sequence_returns_zeros(self):
        assert np.all(autocorrelation([1] * 100, 4) == 0)


class TestCollision:
    def test_balanced(self):
        assert collision_entropy_bits([0, 1] * 10) == pytest.approx(1.0)

    def test_le_shannon(self):
        bits = [1] * 70 + [0] * 30
        assert collision_entropy_bits(bits) <= shannon_entropy_bits(bits) + 1e-12
