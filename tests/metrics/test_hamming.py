"""Tests for population-level PUF quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.hamming import (
    binary_entropy,
    bit_aliasing,
    bit_aliasing_entropy,
    inter_device_distances,
    intra_device_distances,
    quality_report,
    reliability,
    uniformity,
    uniqueness,
)


class TestDistances:
    def test_intra_identical(self):
        m = [[0, 1, 1], [0, 1, 1], [0, 1, 1]]
        assert intra_device_distances(m) == [0.0, 0.0]

    def test_intra_needs_two(self):
        with pytest.raises(ValueError):
            intra_device_distances([[0, 1]])

    def test_inter_pair_count(self):
        responses = np.random.default_rng(0).integers(0, 2, size=(5, 64))
        assert len(inter_device_distances(responses)) == 10

    def test_reliability_ideal(self):
        assert reliability([[1, 0], [1, 0]]) == 1.0

    def test_reliability_with_flips(self):
        # One of two bits flips in the second measurement.
        assert reliability([[1, 0], [1, 1]]) == 0.5

    def test_uniqueness_opposite(self):
        assert uniqueness([[0, 0], [1, 1]]) == 1.0

    def test_uniqueness_random_near_half(self):
        responses = np.random.default_rng(1).integers(0, 2, size=(20, 512))
        assert 0.45 < uniqueness(responses) < 0.55


class TestUniformity:
    def test_balanced(self):
        assert uniformity([0, 1, 0, 1]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uniformity([])


class TestAliasing:
    def test_probabilities(self):
        responses = [[1, 0, 1], [1, 1, 0]]
        assert bit_aliasing(responses).tolist() == [1.0, 0.5, 0.5]

    def test_entropy_extremes(self):
        responses = [[1, 0, 1], [1, 1, 0]]
        entropy = bit_aliasing_entropy(responses)
        assert entropy[0] == 0.0  # fully aliased
        assert entropy[1] == 1.0  # unbiased

    def test_needs_two_devices(self):
        with pytest.raises(ValueError):
            bit_aliasing([[1, 0]])

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50)
    def test_binary_entropy_bounds(self, p):
        h = float(binary_entropy(np.array([p]))[0])
        assert 0.0 <= h <= 1.0

    def test_binary_entropy_symmetry(self):
        assert binary_entropy(np.array([0.3]))[0] == pytest.approx(
            binary_entropy(np.array([0.7]))[0]
        )

    def test_binary_entropy_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            binary_entropy(np.array([1.5]))


class TestQualityReport:
    def test_report_fields(self):
        rng = np.random.default_rng(2)
        refs = rng.integers(0, 2, size=(4, 128), dtype=np.uint8)
        repeated = [np.vstack([r, r, r]) for r in refs]  # perfectly stable
        report = quality_report(refs, repeated)
        assert report.n_devices == 4
        assert report.n_bits == 128
        assert report.reliability_mean == 1.0
        assert 0.3 < report.uniqueness_mean < 0.7
        assert len(report.as_rows()) == 4
        assert len(report.inter_distances) == 6
