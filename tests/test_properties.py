"""Cross-cutting property-based tests (hypothesis) on library invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.drbg import HmacDrbg
from repro.crypto.fuzzy_extractor import ConcatenatedCode
from repro.crypto.kdf import hkdf
from repro.crypto.mac import hmac_sha256, verify_mac
from repro.crypto.modes import AuthenticatedCipher, AuthenticationError
from repro.metrics.hamming import binary_entropy
from repro.metrics.nist import run_suite
from repro.utils.bits import (
    fractional_hamming_distance,
    hamming_distance,
    xor_bits,
)

bits_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=128)


class TestHammingInvariants:
    @given(bits_arrays, bits_arrays, bits_arrays)
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        n = min(len(a), len(b), len(c))
        a, b, c = a[:n], b[:n], c[:n]
        assert hamming_distance(a, c) <= \
            hamming_distance(a, b) + hamming_distance(b, c)

    @given(bits_arrays, bits_arrays)
    @settings(max_examples=40)
    def test_distance_equals_xor_weight(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert hamming_distance(a, b) == int(np.sum(xor_bits(a, b)))

    @given(bits_arrays)
    @settings(max_examples=30)
    def test_fractional_bounded(self, a):
        flipped = [1 - x for x in a]
        assert fractional_hamming_distance(a, flipped) == 1.0


class TestEntropyInvariants:
    @given(st.floats(0.0, 1.0))
    @settings(max_examples=50)
    def test_entropy_peak_at_half(self, p):
        h = float(binary_entropy(np.array([p]))[0])
        assert h <= 1.0
        assert h <= float(binary_entropy(np.array([0.5]))[0]) + 1e-12


class TestCryptoInvariants:
    @given(st.binary(max_size=64), st.binary(max_size=64))
    @settings(max_examples=30)
    def test_mac_verifies_own_output(self, key, message):
        tag = hmac_sha256(key, message)
        assert verify_mac(message, key, tag)

    @given(st.binary(min_size=1, max_size=32), st.binary(min_size=1, max_size=32))
    @settings(max_examples=30)
    def test_distinct_keys_distinct_macs(self, key_a, key_b):
        if key_a == key_b:
            return
        assert hmac_sha256(key_a, b"m") != hmac_sha256(key_b, b"m")

    @given(st.binary(min_size=1, max_size=16), st.integers(1, 64))
    @settings(max_examples=30)
    def test_hkdf_length_contract(self, ikm, length):
        assert len(hkdf(ikm, length)) == length

    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=20)
    def test_drbg_streams_repeatable(self, seed):
        assert HmacDrbg(seed).generate(48) == HmacDrbg(seed).generate(48)

    @given(st.binary(max_size=96), st.binary(min_size=32, max_size=32))
    @settings(max_examples=25)
    def test_aead_round_trip(self, plaintext, key):
        aead = AuthenticatedCipher(key)
        assert aead.decrypt(aead.encrypt(plaintext, nonce=b"pn")) == plaintext

    @given(st.binary(min_size=8, max_size=64), st.integers(0, 7))
    @settings(max_examples=25)
    def test_aead_any_single_bitflip_rejected(self, plaintext, bit):
        aead = AuthenticatedCipher(bytes(range(32)))
        sealed = bytearray(aead.encrypt(plaintext, nonce=b"pn"))
        sealed[len(sealed) // 2] ^= 1 << bit
        with pytest.raises(AuthenticationError):
            aead.decrypt(bytes(sealed))


class TestEccInvariants:
    @given(st.integers(0, 2**16 - 1), st.floats(0.0, 0.04))
    @settings(max_examples=15, deadline=None)
    def test_concatenated_code_corrects_low_ber(self, message_int, ber):
        code = ConcatenatedCode(bch_m=5, bch_t=3, repetition=3)
        message = np.array([(message_int >> i) & 1 for i in range(16)],
                           dtype=np.uint8)
        encoded = code.encode(message)
        rng = np.random.default_rng(message_int)
        noisy = encoded ^ (rng.random(encoded.size) < ber).astype(np.uint8)
        assert np.array_equal(code.decode(noisy), message)


class TestNistSuiteInvariants:
    @given(st.integers(0, 2**32))
    @settings(max_examples=10, deadline=None)
    def test_p_values_in_range(self, seed):
        rng = np.random.default_rng(seed)
        stream = rng.integers(0, 2, 512, dtype=np.uint8)
        for result in run_suite(stream):
            assert 0.0 <= result.p_value <= 1.0
