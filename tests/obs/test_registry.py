"""MetricsRegistry semantics: counters, gauges, histograms, bounds.

The registry's three contracts are pinned here:

- disabled writes are single-branch no-ops (stored series persist, and
  the shim path ``_set_total`` stays live regardless);
- label cardinality is bounded — new label sets past ``max_label_sets``
  fold into the ``other`` overflow series, existing series keep
  counting;
- everything is deterministic under an injectable clock.
"""

import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.registry import OVERFLOW_LABEL


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_events", "events")
        counter.inc()
        counter.inc(3)
        assert counter.value() == 4

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_results", "results",
                                   ("result",))
        counter.inc(result="accepted")
        counter.inc(2, result="bad-mac")
        assert counter.value(result="accepted") == 1
        assert counter.value(result="bad-mac") == 2
        assert counter.value(result="timeout") == 0

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_mono", "")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        plain = registry.counter("repro_test_plain", "")
        labelled = registry.counter("repro_test_lab", "", ("kind",))
        with pytest.raises(ValueError):
            plain.inc(kind="x")
        with pytest.raises(ValueError):
            labelled.inc()
        with pytest.raises(ValueError):
            labelled.inc(wrong="x")

    def test_set_total_is_an_absolute_write(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_abs", "")
        counter._set_total(7)
        counter._set_total(5)  # shim semantics: attribute assignment
        assert counter.value() == 5


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_test_depth", "")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13


class TestHistogram:
    def test_observations_land_in_le_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_lat", "",
                                  buckets=(0.001, 0.01, 0.1))
        hist.observe(0.0005)   # <= 0.001
        hist.observe(0.001)    # == bound -> still le=0.001
        hist.observe(0.05)     # <= 0.1
        hist.observe(99.0)     # +Inf
        sample = hist._snapshot()["samples"][0]
        assert sample["buckets"] == [2, 0, 1, 1]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(0.0515 + 99.0)

    def test_buckets_must_be_strictly_increasing(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("repro_test_bad", "", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("repro_test_bad2", "", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("repro_test_bad3", "", buckets=())

    def test_default_buckets_are_shared_log_scale(self):
        assert len(DEFAULT_LATENCY_BUCKETS) == 13
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        for lo, hi in zip(DEFAULT_LATENCY_BUCKETS,
                          DEFAULT_LATENCY_BUCKETS[1:]):
            assert hi == pytest.approx(lo * 4.0)

    def test_timer_uses_the_injectable_clock(self):
        ticks = iter([10.0, 10.5])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        hist = registry.histogram("repro_test_timer", "",
                                  buckets=(0.1, 1.0))
        with hist.time():
            pass
        sample = hist._snapshot()["samples"][0]
        assert sample["sum"] == pytest.approx(0.5)
        assert sample["buckets"] == [0, 1, 0]


class TestEnabledGating:
    def test_disabled_writes_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_test_c", "")
        gauge = registry.gauge("repro_test_g", "")
        hist = registry.histogram("repro_test_h", "")
        counter.inc()
        gauge.set(5)
        hist.observe(0.1)
        assert counter.value() == 0
        assert gauge.value() == 0
        assert hist._snapshot()["samples"] == []

    def test_disable_preserves_stored_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_keep", "")
        counter.inc(3)
        registry.disable()
        counter.inc(100)          # dropped
        assert counter.value() == 3
        registry.enable()
        counter.inc()
        assert counter.value() == 4

    def test_set_total_bypasses_the_gate(self):
        # The deprecated attribute shims promise live counts even when
        # an operator disables scraping.
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_test_shimmed", "")
        counter._set_total(9)
        assert counter.value() == 9

    def test_collectors_only_run_when_enabled(self):
        registry = MetricsRegistry()
        calls = []
        registry.register_collector(lambda: calls.append(1))
        registry.snapshot()
        assert len(calls) == 1
        registry.disable()
        registry.snapshot()
        assert len(calls) == 1
        registry.snapshot(run_collectors=False)
        assert len(calls) == 1


class TestCardinalityBound:
    def test_new_label_sets_fold_into_other(self):
        registry = MetricsRegistry(max_label_sets=3)
        counter = registry.counter("repro_test_ids", "", ("device",))
        for device in ("a", "b", "c"):
            counter.inc(device=device)
        counter.inc(device="hostile-1")
        counter.inc(device="hostile-2")
        assert counter.value(device="a") == 1
        assert counter.value(device=OVERFLOW_LABEL) == 2
        keys = {sample["labels"]["device"]
                for sample in counter._snapshot()["samples"]}
        assert keys == {"a", "b", "c", OVERFLOW_LABEL}

    def test_existing_series_keep_counting_after_the_cap(self):
        registry = MetricsRegistry(max_label_sets=2)
        counter = registry.counter("repro_test_keepers", "", ("k",))
        counter.inc(k="x")
        counter.inc(k="y")
        counter.inc(k="z")     # folds
        counter.inc(5, k="x")  # pre-cap series stays addressable
        assert counter.value(k="x") == 6
        assert counter.value(k=OVERFLOW_LABEL) == 1

    def test_max_label_sets_validation(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_label_sets=0)


class TestRegistration:
    def test_registration_is_idempotent_by_name(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_same", "help", ("a",))
        second = registry.counter("repro_test_same", "other help", ("a",))
        assert first is second

    def test_kind_or_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_taken", "", ("a",))
        with pytest.raises(ValueError):
            registry.gauge("repro_test_taken", "", ("a",))
        with pytest.raises(ValueError):
            registry.counter("repro_test_taken", "", ("b",))

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad", "")
        with pytest.raises(ValueError):
            registry.counter("has spaces", "")
        with pytest.raises(ValueError):
            registry.counter("repro_ok", "", ("bad-label",))

    def test_get_and_snapshot_shape(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_b", "")
        registry.gauge("repro_test_a", "")
        counter.inc()
        assert registry.get("repro_test_b") is counter
        assert registry.get("missing") is None
        snapshot = registry.snapshot()
        assert snapshot["enabled"] is True
        # Name-sorted for deterministic rendering.
        assert [m["name"] for m in snapshot["metrics"]] == \
            ["repro_test_a", "repro_test_b"]
