"""Instrumentation is an observer, never a participant.

The package invariant: enabling metrics and tracing must not perturb
a campaign in any way — same nonce stream, same RNG draws, same CRP
rolls, same stats.  Three otherwise-identical hostile campaigns run
here (uninstrumented, instrumented-enabled, instrumented-disabled)
and every durable artifact is compared bit for bit.
"""

import pytest

from repro.fleet import (
    FaultModel,
    FleetSimulator,
    ReplayAdversary,
    TamperAdversary,
)
from repro.obs import MetricsRegistry, RoundTracer, instrument_verifier
from repro.service import AuthService, FleetConfig

#: Zero-noise PUF: the whole campaign is a pure function of the seed.
FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16,
                noise_mw=0.0)

N_DEVICES = 32
N_ROUNDS = 4
SEED = 2203


def tap_nonces(verifier, log):
    """Record every issued nonce without changing the call."""
    original = verifier.open_round

    def wrapped(device_ids):
        nonces = original(device_ids)
        for device_id in sorted(nonces):
            log.append((device_id, bytes(nonces[device_id])))
        return nonces

    verifier.open_round = wrapped


def durable_state(service):
    """Every byte that must match across runs."""
    state = {}
    for device in service.device_list:
        record = service.registry.record(device.device_id)
        state[device.device_id] = (
            device.current_response.tobytes(),
            record.current_response.tobytes(),
            int(record.sessions),
            record.crp_used.tobytes(),
        )
    return state


def hostile_campaign(mode):
    """Run the reference campaign; ``mode`` picks the instrumentation."""
    service = AuthService.provision(FleetConfig(
        n_devices=N_DEVICES, seed=SEED, puf=FAST_PUF))
    simulator = FleetSimulator.from_service(
        service,
        faults=FaultModel(request_drop=0.05, response_drop=0.05,
                          confirmation_drop=0.10),
        adversaries=[ReplayAdversary(probability=0.3),
                     TamperAdversary(probability=0.05, factor=1.5)],
    )
    nonces = []
    tap_nonces(simulator.verifier, nonces)
    obs = None
    if mode != "off":
        ticks = {"now": 0.0}

        def clock():
            ticks["now"] += 1.0 / 1024.0
            return ticks["now"]

        registry = MetricsRegistry(enabled=(mode == "enabled"),
                                   clock=clock)
        obs = instrument_verifier(
            simulator.verifier, registry,
            tracer=RoundTracer(capacity=64, clock=clock))
    stats = simulator.run_campaign(N_ROUNDS)
    state = stats.to_state()
    state.pop("elapsed_s")  # the only wall-clock-dependent field
    return {
        "stats": state,
        "nonces": nonces,
        "durable": durable_state(service),
        "obs": obs,
    }


@pytest.fixture(scope="module")
def campaigns():
    return {mode: hostile_campaign(mode)
            for mode in ("off", "enabled", "disabled")}


class TestBitIdenticalTranscripts:
    def test_campaign_stats_are_identical(self, campaigns):
        reference = campaigns["off"]["stats"]
        assert reference["authenticated"] > 0
        assert reference["failures_by_kind"], \
            "the reference campaign must actually be hostile"
        assert campaigns["enabled"]["stats"] == reference
        assert campaigns["disabled"]["stats"] == reference

    def test_nonce_streams_are_identical(self, campaigns):
        reference = campaigns["off"]["nonces"]
        assert len(reference) >= N_DEVICES * N_ROUNDS
        assert campaigns["enabled"]["nonces"] == reference
        assert campaigns["disabled"]["nonces"] == reference

    def test_durable_state_is_identical(self, campaigns):
        reference = campaigns["off"]["durable"]
        assert campaigns["enabled"]["durable"] == reference
        assert campaigns["disabled"]["durable"] == reference


class TestReconciliation:
    """Scraped totals are exact, not sampled: they reconcile with the
    campaign's own bookkeeping to the last device."""

    def test_counters_reconcile_with_campaign_stats(self, campaigns):
        stats = campaigns["enabled"]["stats"]
        obs = campaigns["enabled"]["obs"]
        assert obs.finalized.value() == stats["authenticated"]
        assert obs.aborted.value() == stats["dropped_confirmations"]
        assert obs.challenges.value() == stats["attempts"]
        assert obs.results.value(result="accepted") == \
            obs.finalized.value() + obs.aborted.value()

    def test_failure_kinds_reconcile_exactly(self, campaigns):
        stats = campaigns["enabled"]["stats"]
        obs = campaigns["enabled"]["obs"]
        seen = {sample["labels"]["result"]: sample["value"]
                for sample in obs.results._snapshot()["samples"]
                if sample["labels"]["result"] != "accepted"}
        assert seen == {kind: float(count) for kind, count
                        in stats["failures_by_kind"].items()}

    def test_disabled_registry_stays_empty(self, campaigns):
        obs = campaigns["disabled"]["obs"]
        assert obs.finalized.value() == 0
        assert obs.results._snapshot()["samples"] == []
        assert len(obs.tracer) == 0

    def test_enabled_tracer_saw_the_rounds(self, campaigns):
        obs = campaigns["enabled"]["obs"]
        assert len(obs.tracer) > 0
        span = obs.tracer.last()
        assert span.nonces and span.status != "open"
