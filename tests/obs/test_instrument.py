"""Instrumentation wiring: shims, facade hooks, and the admin verbs.

Every async test drives asyncio with ``asyncio.run`` inside a
synchronous test function (no asyncio pytest plugin in the
environment); servers bind ephemeral loopback ports.
"""

import asyncio
import json
import warnings

import pytest

from repro.obs import (
    MetricsRegistry,
    RoundTracer,
    instrument_chaos,
    instrument_replica_group,
    instrument_server,
    instrument_service,
    parse_prometheus,
)
from repro.fleet.lifecycle import CampaignStats
from repro.protocols.mutual_auth import FailureKind
from repro.service import AuthService, FleetConfig, HAConfig
from repro.service.codec import (
    SCHEMA_MAJOR,
    SessionHello,
    SessionRequest,
    SessionResult,
    SessionWelcome,
    decode_message,
    encode_message,
)
from repro.service.ha import HAAuthClient, ReplicaGroup
from repro.service.net import (
    AuthClient,
    AuthServer,
    ChaosTransport,
    NetConfig,
    RemoteAuthError,
)
from repro.service.net.chaos import ChaosMetrics
from repro.service.net.server import ServerMetrics
from repro.service.net.stream import read_frame, write_frame
from repro.service.policy import AuditLogPolicy

FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)
FAST_NET = NetConfig(response_timeout_s=2.0, latency_budget_s=0.005)


def provision(n_devices=4, seed=7, **kwargs):
    return AuthService.provision(FleetConfig(
        n_devices=n_devices, seed=seed, puf=FAST_PUF, **kwargs))


def run(coro):
    return asyncio.run(coro)


class TestDeprecatedShims:
    def test_bare_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="migration"):
            ServerMetrics()
        with pytest.warns(DeprecationWarning, match="migration"):
            ChaosMetrics()

    def test_for_owner_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ServerMetrics._for_owner()
            ChaosMetrics._for_owner()

    def test_attribute_api_is_preserved(self):
        metrics = ServerMetrics._for_owner()
        assert metrics.requests == 0
        metrics.requests += 1
        metrics.requests += 1
        metrics.auths_accepted = 5
        assert metrics.requests == 2
        assert metrics.auths_accepted == 5
        assert isinstance(metrics.requests, int)
        with pytest.raises(AttributeError):
            metrics.not_a_counter

    def test_to_json_keeps_the_legacy_field_order(self):
        metrics = ServerMetrics._for_owner()
        assert list(metrics.to_json()) == list(ServerMetrics._FIELDS)
        assert set(metrics.to_json().values()) == {0}

    def test_counts_stay_live_with_a_disabled_registry(self):
        registry = MetricsRegistry(enabled=False)
        metrics = ServerMetrics._for_owner(registry)
        metrics.drained_tickets += 3
        assert metrics.drained_tickets == 3

    def test_fields_back_registry_counters(self):
        registry = MetricsRegistry()
        metrics = ChaosMetrics._for_owner(registry, labels={"replica": 1})
        metrics.frames_dropped += 4
        counter = registry.get("repro_net_chaos_frames_dropped")
        assert counter is not None
        assert counter.value(replica="1") == 4


class TestInstrumentEntryPoints:
    def test_instrument_server_carries_counts_over(self):
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                server.metrics.requests += 7
                registry = MetricsRegistry()
                instrument_server(server, registry,
                                  labels={"replica": 0})
                assert server.metrics.requests == 7
                assert registry.get(
                    "repro_net_server_requests").value(replica="0") == 7
        run(main())

    def test_instrument_chaos_carries_counts_over(self):
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                chaos = ChaosTransport("127.0.0.1", server.port)
                await chaos.start()
                try:
                    chaos.metrics.frames_forwarded += 2
                    registry = MetricsRegistry()
                    shim = instrument_chaos(chaos, registry)
                    assert chaos.metrics is shim
                    assert chaos.metrics.frames_forwarded == 2
                finally:
                    await chaos.aclose()
        run(main())

    def test_facade_hooks_count_rounds_enroll_revoke(self):
        service = provision(n_devices=4)
        obs = instrument_service(service)
        report = service.authenticate_batch()
        assert report.n_accepted == 4
        assert obs.finalized.value() == 4
        assert obs.results.value(result="accepted") == 4
        assert obs.rounds.value() >= 1
        latency = obs.round_latency._snapshot()["samples"]
        assert any(sample["labels"]["phase"] == "batch"
                   for sample in latency)
        victim = service.device_list[0].device_id
        service.revoke(victim)
        assert obs.revoked.value() == 1
        service.close()


class TestAuditLogTimestamps:
    def test_entries_carry_clock_and_incarnation(self):
        ticks = iter([3.5, 4.5])
        audit = AuditLogPolicy(clock=lambda: next(ticks))
        audit.record("probe")
        audit.bind_incarnation(2, replica=1)
        audit.record("probe")
        first, second = audit.events
        assert first == {"event": "probe", "ts": 3.5, "incarnation": 0}
        assert second == {"event": "probe", "ts": 4.5, "incarnation": 2,
                          "replica": 1}

    def test_service_rounds_are_audited_with_timestamps(self):
        audit = AuditLogPolicy(clock=lambda: 9.0)
        service = AuthService.provision(
            FleetConfig(n_devices=4, seed=7, puf=FAST_PUF),
            policies=[audit])
        service.authenticate_batch()
        rounds = [entry for entry in audit.events
                  if entry["event"] == "round"]
        assert rounds and rounds[-1]["ts"] == 9.0
        assert rounds[-1]["incarnation"] == 0
        service.close()


class TestCampaignStatsState:
    def test_json_round_trip_is_equality(self):
        stats = CampaignStats(rounds=4, attempts=326, authenticated=255,
                              retries=70, dropped_confirmations=29,
                              failures_by_kind={"bad-mac": 3},
                              elapsed_s=0.25)
        clone = CampaignStats.from_state(
            json.loads(json.dumps(stats.to_state())))
        assert clone == stats

    def test_from_state_ignores_derived_keys(self):
        stats = CampaignStats(authenticated=10, elapsed_s=2.0)
        payload = stats.to_json()
        assert payload["auths_per_sec"] == 5.0
        assert CampaignStats.from_state(payload) == stats

    def test_failure_kinds_are_normalized(self):
        clone = CampaignStats.from_state(
            {"failures_by_kind": {"bad-mac": 3.0}})
        assert clone.failures_by_kind == {"bad-mac": 3}


class TestMetricsVerb:
    def test_scrape_reconciles_with_the_batch_report(self):
        async def main():
            service = provision(n_devices=6)
            registry = MetricsRegistry()
            instrument_service(service, registry)
            async with AuthServer(service, FAST_NET) as server:
                instrument_server(server, registry)
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    report = await client.authenticate_batch(
                        service.device_list)
                    scrape = await client.metrics()
            return report, scrape
        report, scrape = run(main())
        parsed = parse_prometheus(scrape)
        assert report.n_accepted == 6
        assert parsed[("repro_auth_finalized_total", ())] == \
            float(report.n_accepted)
        assert parsed[("repro_auth_results_total",
                       (("result", "accepted"),))] == \
            float(report.n_accepted)
        # The socket plane scraped alongside the auth plane: the shim
        # counters live in the same registry.
        assert parsed[("repro_net_server_connections_opened_total",
                       ())] >= 1.0

    def test_uninstrumented_server_serves_its_own_counters(self):
        # Fallback registry: no instrument_* call anywhere, yet the
        # verb still scrapes the shim's private registry.
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    return await client.metrics()
        parsed = parse_prometheus(run(main()))
        assert parsed[("repro_net_server_requests_total", ())] == 1.0

    def test_json_format(self):
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    return await client.metrics(fmt="json")
        snapshot = json.loads(run(main()))
        assert snapshot["enabled"] is True
        names = {metric["name"] for metric in snapshot["metrics"]}
        assert "repro_net_server_requests" in names

    def test_unknown_format_is_malformed(self):
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    with pytest.raises(RemoteAuthError,
                                       match="unknown metrics format"):
                        await client.metrics(fmt="yaml")
        run(main())

    def test_verbs_require_wire_minor_2(self):
        # A 1.1 client negotiates minor 1; the admin verbs must be
        # refused with the version taxonomy, not served or crashed.
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                try:
                    write_frame(writer, encode_message(
                        SessionHello("legacy-1.1", SCHEMA_MAJOR, 1)))
                    await writer.drain()
                    welcome = decode_message(await read_frame(reader))
                    assert isinstance(welcome, SessionWelcome)
                    assert (welcome.major, welcome.minor) == (1, 1)
                    write_frame(writer, encode_message(
                        SessionRequest("metrics")))
                    await writer.drain()
                    result = decode_message(await read_frame(reader))
                finally:
                    writer.close()
                    await writer.wait_closed()
                return result
        result = run(main())
        assert isinstance(result, SessionResult)
        assert not result.ok
        assert result.detail["kind"].decode() == \
            FailureKind.UNSUPPORTED_VERSION.value
        assert b"1.2" in result.detail["failure"]


class TestTraceVerb:
    def test_round_spans_are_served_over_the_wire(self):
        async def main():
            service = provision(n_devices=3)
            tracer = RoundTracer()
            instrument_service(service, MetricsRegistry(), tracer=tracer)
            async with AuthServer(service, FAST_NET) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    report = await client.authenticate_batch(
                        service.device_list)
                    assert report.n_accepted == 3
                    return await client.trace()
        spans = run(main())
        assert spans, "the authenticated round must leave a span"
        last = spans[-1]
        assert last["status"] == "finalized"
        assert set(last["nonces"]) == set(last["device_ids"])
        events = [name for name, _ in last["events"]]
        assert "challenge" in events and "finalize" in events

    def test_untraced_server_serves_an_empty_list(self):
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    return await client.trace()
        assert run(main()) == []


class TestReplicaGroupScrape:
    def test_ha_client_scrapes_any_replica(self):
        async def main():
            config = FleetConfig(
                n_devices=4, seed=7, puf=FAST_PUF,
                ha=HAConfig(n_replicas=2, lease_timeout_s=0.5,
                            heartbeat_interval_s=0.05))
            group = await ReplicaGroup.provision(config,
                                                 net_config=FAST_NET)
            try:
                obs = instrument_replica_group(group)
                device = group.devices[0]
                async with HAAuthClient(group.endpoints,
                                        verb_timeout_s=2.0) as client:
                    ticket = await client.authenticate(device)
                    assert ticket.accepted
                    primary = await client.scrape()
                    standby = await client.scrape(index=1)
                    spans = await client.trace()
            finally:
                await group.aclose()
            return obs, primary, standby, spans
        obs, primary, standby, spans = run(main())
        parsed = parse_prometheus(primary)
        assert parsed[("repro_auth_finalized_total", ())] == 1.0
        assert parsed[("repro_ha_replica_incarnations",
                       (("replica", "0"),))] >= 1.0
        # The standby — fenced for mutating verbs — serves the same
        # shared registry: admin verbs are deliberately unfenced.
        assert parse_prometheus(standby)[
            ("repro_auth_finalized_total", ())] == 1.0
        # No tracer attached: the verb answers an empty list, not an
        # error.
        assert obs.tracer is None and spans == []
