"""RoundTracer: bounded span ring, commit-log correlation, export."""

import json

from repro.obs import RoundTracer
from repro.obs.trace import NONCE_PREFIX_BYTES


def make_tracer(**kwargs):
    ticks = {"now": 0.0}

    def clock():
        ticks["now"] += 1.0
        return ticks["now"]

    return RoundTracer(clock=clock, **kwargs)


class TestSpanLifecycle:
    def test_begin_marks_finish(self):
        tracer = make_tracer()
        span = tracer.begin(["dev-0", "dev-1"], replica=2, incarnation=3)
        assert span.status == "open"
        tracer.mark(span, "challenge")
        tracer.mark(span, "verify")
        tracer.finish(span, "verified")
        assert span.round_id == 0
        assert span.replica == 2 and span.incarnation == 3
        assert [name for name, _ in span.events] == ["challenge", "verify"]
        # Injected clock drives the timestamps.
        assert [ts for _, ts in span.events] == [1.0, 2.0]
        assert span.status == "verified"

    def test_round_ids_are_sequential(self):
        tracer = make_tracer()
        assert [tracer.begin().round_id for _ in range(3)] == [0, 1, 2]

    def test_partial_spans_survive_in_the_ring(self):
        # Appending on begin (not finish) keeps the rounds that died
        # mid-flight — exactly the ones an operator wants to see.
        tracer = make_tracer()
        span = tracer.begin(["dev-0"])
        tracer.mark(span, "challenge")
        retained = tracer.last()
        assert retained is span
        assert retained.status == "open"

    def test_correlate_keeps_nonce_hex_prefixes(self):
        tracer = make_tracer()
        span = tracer.begin(["dev-0"])
        nonce = bytes(range(32))
        span.correlate({"dev-0": nonce})
        assert span.nonces["dev-0"] == nonce[:NONCE_PREFIX_BYTES].hex()
        assert len(span.nonces["dev-0"]) == 2 * NONCE_PREFIX_BYTES


class TestRing:
    def test_capacity_bounds_memory_and_counts_drops(self):
        tracer = make_tracer(capacity=4)
        for _ in range(10):
            tracer.begin()
        assert len(tracer) == 4
        assert tracer.dropped == 6
        # Oldest fell off the back; the ring holds the newest spans.
        assert [span.round_id for span in tracer.spans()] == [6, 7, 8, 9]

    def test_find_by_device(self):
        tracer = make_tracer()
        tracer.begin(["dev-0", "dev-1"])
        tracer.begin(["dev-2"])
        tracer.begin(["dev-1"])
        hits = tracer.find("dev-1")
        assert [span.round_id for span in hits] == [0, 2]
        assert tracer.find("dev-9") == []

    def test_empty_ring(self):
        tracer = make_tracer()
        assert len(tracer) == 0
        assert tracer.last() is None
        assert tracer.spans() == []
        assert tracer.to_json() == []


class TestExport:
    def test_to_json_is_json_serializable(self):
        tracer = make_tracer()
        span = tracer.begin(["dev-0"], replica=1, incarnation=2)
        span.correlate({"dev-0": b"\x00" * 16})
        tracer.mark(span, "challenge")
        tracer.finish(span, "finalized")
        payload = json.loads(json.dumps(tracer.to_json()))
        assert payload == [{
            "round_id": 0,
            "device_ids": ["dev-0"],
            "replica": 1,
            "incarnation": 2,
            "status": "finalized",
            "events": [["challenge", 1.0]],
            "nonces": {"dev-0": "00" * NONCE_PREFIX_BYTES},
        }]
