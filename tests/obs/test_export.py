"""Prometheus/JSON renderers, and the golden-file campaign scrape.

The golden file pins the *entire* rendered scrape of a 64-device
hostile campaign — byte for byte — so any drift in metric names,
help strings, label sets, value formatting, or the campaign's
deterministic counts is an explicit, reviewable diff.  Regenerate
after an intentional change with:

    PYTHONPATH=src python -c "
    from tests.obs.test_export import campaign_scrape
    import pathlib
    pathlib.Path('tests/obs/golden_scrape.prom').write_text(
        campaign_scrape()[0])
    "
"""

import json
from pathlib import Path

import pytest

from repro.fleet import (
    FaultModel,
    FleetSimulator,
    ReplayAdversary,
    TamperAdversary,
)
from repro.obs import (
    MetricsRegistry,
    format_value,
    instrument_verifier,
    parse_prometheus,
    render_json,
    render_prometheus,
)
from repro.service import AuthService, FleetConfig

GOLDEN_PATH = Path(__file__).parent / "golden_scrape.prom"

#: Zero-noise PUF so the campaign transcript is bit-deterministic.
FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16,
                noise_mw=0.0)


def campaign_scrape():
    """Scrape of a deterministic 64-device hostile campaign."""
    service = AuthService.provision(FleetConfig(
        n_devices=64, seed=1103, puf=FAST_PUF))
    simulator = FleetSimulator.from_service(
        service,
        faults=FaultModel(request_drop=0.05, response_drop=0.05,
                          confirmation_drop=0.10),
        adversaries=[ReplayAdversary(probability=0.3),
                     TamperAdversary(probability=0.05, factor=1.5)],
    )
    # Exact-binary clock steps: even if a timer fires, every timestamp
    # and delta is representable, so the scrape never picks up float
    # noise from the host.
    ticks = {"now": 0.0}

    def clock():
        ticks["now"] += 1.0 / 1024.0
        return ticks["now"]

    registry = MetricsRegistry(clock=clock)
    obs = instrument_verifier(simulator.verifier, registry)
    stats = simulator.run_campaign(4)
    return render_prometheus(registry.snapshot()), stats, obs


class TestFormatValue:
    def test_integral_floats_render_bare(self):
        assert format_value(3.0) == "3"
        assert format_value(0) == "0"
        assert format_value(-17.0) == "-17"

    def test_fractional_floats_render_repr(self):
        assert format_value(0.5) == "0.5"
        assert format_value(1e-06) == "1e-06"

    def test_huge_integers_stay_floats(self):
        assert format_value(1e18) == repr(1e18)

    def test_infinities(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"


class TestLabelEscaping:
    def test_spec_escapes_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_esc", "h", ("who",))
        hostile = 'back\\slash "quoted"\nnewline'
        counter.inc(7, who=hostile)
        text = render_prometheus(registry.snapshot())
        assert '\\\\' in text and '\\"' in text and "\\n" in text
        # Raw newline must never appear inside a sample line.
        for line in text.splitlines():
            assert line.startswith(("#", "repro_test_esc_total"))
        parsed = parse_prometheus(text)
        assert parsed[("repro_test_esc_total",
                       (("who", hostile),))] == 7.0

    def test_help_newlines_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_help", "line one\nline two")
        text = render_prometheus(registry.snapshot())
        assert "# HELP repro_test_help_total line one\\nline two" in text


class TestCounterSuffix:
    def test_total_suffix_is_appended_once(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_things", "").inc()
        registry.counter("repro_test_done_total", "").inc()
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert ("repro_test_things_total", ()) in parsed
        assert ("repro_test_done_total", ()) in parsed
        assert ("repro_test_done_total_total", ()) not in parsed


class TestHistogramRendering:
    def test_buckets_are_cumulative_and_capped_by_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_hist", "",
                                  buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
            hist.observe(value)
        text = render_prometheus(registry.snapshot())
        parsed = parse_prometheus(text)
        series = [parsed[("repro_test_hist_bucket", (("le", le),))]
                  for le in ("0.001", "0.01", "0.1", "+Inf")]
        assert series == [1.0, 3.0, 4.0, 5.0]
        # Monotone non-decreasing, and +Inf equals the count.
        assert series == sorted(series)
        assert series[-1] == parsed[("repro_test_hist_count", ())]
        assert parsed[("repro_test_hist_sum", ())] == \
            pytest.approx(0.0005 + 0.005 + 0.005 + 0.05 + 5.0)

    def test_labelled_histogram_series_carry_their_labels(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_test_lat", "", ("phase",),
                                  buckets=(1.0,))
        hist.observe(0.5, phase="batch")
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert parsed[("repro_test_lat_bucket",
                       (("le", "1"), ("phase", "batch")))] == 1.0
        assert parsed[("repro_test_lat_count",
                       (("phase", "batch"),))] == 1.0


class TestCardinalityOverflowRendering:
    def test_overflow_series_renders_as_other(self):
        registry = MetricsRegistry(max_label_sets=2)
        counter = registry.counter("repro_test_flood", "", ("device",))
        counter.inc(device="dev-0")
        counter.inc(device="dev-1")
        for n in range(50):
            counter.inc(device=f"hostile-{n}")
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        assert parsed[("repro_test_flood_total",
                       (("device", "other"),))] == 50.0
        # The flood created exactly one series, not fifty.
        floods = [key for key in parsed
                  if key[0] == "repro_test_flood_total"]
        assert len(floods) == 3


class TestRenderJson:
    def test_canonical_json_round_trips_the_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_j", "", ("k",)).inc(k="v")
        snapshot = registry.snapshot()
        text = render_json(snapshot)
        assert json.loads(text) == snapshot
        # Canonical: sorted keys, so equal snapshots render equal text.
        assert text == json.dumps(snapshot, sort_keys=True)
        assert "\n" in render_json(snapshot, indent=2)


class TestGoldenScrape:
    def test_hostile_campaign_scrape_matches_golden_file(self):
        scrape, _, _ = campaign_scrape()
        golden = GOLDEN_PATH.read_text()
        assert scrape == golden, (
            "rendered scrape drifted from tests/obs/golden_scrape.prom — "
            "regenerate it (see module docstring) if the change is "
            "intentional"
        )

    def test_scrape_parses_back_to_the_registry_counts(self):
        scrape, stats, obs = campaign_scrape()
        parsed = parse_prometheus(scrape)
        assert parsed[("repro_auth_finalized_total", ())] == \
            float(stats.authenticated)
        assert parsed[("repro_auth_challenges_total", ())] == \
            float(stats.attempts)
        assert parsed[("repro_auth_results_total",
                       (("result", "accepted"),))] == \
            float(obs.finalized.value() + obs.aborted.value())
