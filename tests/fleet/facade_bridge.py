"""Shared legacy-tuple provisioning bridge for the fleet test modules.

The fleet tests predate the service redesign and are written against
the ``(registry, devices, verifier)`` tuple.  They must not call the
deprecated ``repro.fleet.provision_fleet`` shim (tier-1 runs with
``-W error::DeprecationWarning``), so this one adapter maps the old
call shape onto the supported facade for every test module in this
directory — the only place the mapping exists.
"""

from repro.service import AuthService, EngineConfig, FleetConfig


def provision_fleet(n_devices, seed=0, n_spot_crps=0, stacked=True,
                    shard_workers=None, backend="numpy", **puf):
    """Legacy-tuple provisioning through the supported facade."""
    service = AuthService.provision(FleetConfig(
        n_devices=n_devices, seed=seed, n_spot_crps=n_spot_crps,
        engine=EngineConfig(stacked=stacked, shard_workers=shard_workers,
                            backend=backend),
        puf=puf))
    return service.registry, service.device_list, service.verifier
