"""Deadline semantics of the coalescer on its injectable clock.

The flush boundary is defined as ``clock() >= deadline`` — a ticket
submitted at ``t`` with budget ``B`` flushes at exactly ``t + B``, not
one tick later.  These are regression tests for that boundary, for the
:attr:`RoundCoalescer.deadline` / :meth:`RoundCoalescer.time_to_deadline`
timer API the network server schedules against, and for the server's
flush timer reading the *same* injected clock as the coalescer
(``AuthService.clock``) rather than its own ``time.monotonic``.
"""

import asyncio

from repro.fleet import RoundCoalescer
from repro.service import AuthService, FleetConfig
from repro.service.net import AuthClient, AuthServer

from facade_bridge import provision_fleet

CONFIG = dict(challenge_bits=32, n_stages=4, response_bits=16,
              n_spot_crps=0)
BUDGET = 5.0


class FakeClock:
    """A monotonic clock that moves only when told to."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def clocked_coalescer(n_devices=4, seed=11):
    __, devices, verifier = provision_fleet(n_devices, seed=seed, **CONFIG)
    clock = FakeClock()
    coalescer = RoundCoalescer(verifier, latency_budget_s=BUDGET,
                               max_batch=64, clock=clock)
    return devices, coalescer, clock


class TestDeadlineBoundary:
    def test_idle_coalescer_has_no_deadline(self):
        __, coalescer, __ = clocked_coalescer()
        assert coalescer.deadline is None
        assert coalescer.time_to_deadline() is None

    def test_deadline_anchors_to_first_submit(self):
        devices, coalescer, clock = clocked_coalescer()
        start = clock()
        coalescer.submit(devices[0])
        assert coalescer.deadline == start + BUDGET
        clock.advance(1.0)
        # Later submits do NOT extend the deadline: the budget caps the
        # latency of the *oldest* pending request.
        coalescer.submit(devices[1])
        assert coalescer.deadline == start + BUDGET

    def test_poll_holds_strictly_before_the_boundary(self):
        devices, coalescer, clock = clocked_coalescer()
        ticket = coalescer.submit(devices[0])
        clock.advance(BUDGET - 1e-9)
        assert coalescer.poll() is None
        assert not ticket.done
        assert coalescer.flushed_by_deadline == 0

    def test_poll_flushes_at_exactly_the_boundary(self):
        # The regression this file exists for: the flush condition is
        # clock() >= deadline, so a timer that sleeps time_to_deadline()
        # and polls fires on the dot — never a tick late.
        devices, coalescer, clock = clocked_coalescer()
        ticket = coalescer.submit(devices[0])
        clock.advance(BUDGET)
        assert clock() == coalescer.deadline
        assert coalescer.time_to_deadline() == 0.0
        report = coalescer.poll()
        assert report is not None and report.n_accepted == 1
        assert ticket.done and ticket.accepted
        assert coalescer.flushed_by_deadline == 1
        assert coalescer.deadline is None          # reset after flush

    def test_time_to_deadline_counts_down_on_the_injected_clock(self):
        devices, coalescer, clock = clocked_coalescer()
        coalescer.submit(devices[0])
        assert coalescer.time_to_deadline() == BUDGET
        clock.advance(2.0)
        assert coalescer.time_to_deadline() == BUDGET - 2.0
        clock.advance(10.0)                        # long past due
        assert coalescer.time_to_deadline() == 0.0  # clamped, never < 0
        assert coalescer.time_to_deadline(now=clock() - 11.0) == 4.0

    def test_zero_budget_flushes_on_first_poll(self):
        __, devices, verifier = provision_fleet(2, seed=12, **CONFIG)
        clock = FakeClock()
        coalescer = RoundCoalescer(verifier, latency_budget_s=0.0,
                                   max_batch=64, clock=clock)
        ticket = coalescer.submit(devices[0])
        # deadline == now: due immediately, without the clock moving.
        assert coalescer.time_to_deadline() == 0.0
        assert coalescer.poll() is not None
        assert ticket.accepted


class TestServerSharesTheInjectedClock:
    def test_wire_poll_reads_the_service_clock(self):
        # The server's flush decision must consult AuthService.clock —
        # with a frozen fake clock, no amount of real time makes the
        # deadline pass; one fake-clock tick does.
        clock = FakeClock()
        service = AuthService.provision(
            FleetConfig(n_devices=2, seed=13,
                        puf=dict(challenge_bits=32, n_stages=4,
                                 response_bits=16),
                        latency_budget_s=BUDGET),
            clock=clock)
        assert service.clock is clock

        async def main():
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    ticket = await client.submit(service.device_list[0])
                    await asyncio.sleep(0.2)       # real time passes...
                    fired_early = await client.poll()
                    clock.advance(BUDGET)          # ...fake time decides
                    fired_on_time = await client.poll()
                    await ticket.wait(10)
                return fired_early, fired_on_time, ticket, server.metrics
        fired_early, fired_on_time, ticket, metrics = asyncio.run(main())
        assert not fired_early
        assert fired_on_time
        assert ticket.accepted
        assert metrics.flushed_by_deadline == 1
