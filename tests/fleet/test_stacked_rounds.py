"""Stacked-plane fleet rounds vs the per-device path.

The fleet-stacked execution plane must be *bit-compatible* with per-device
interrogation: identical provisioning secrets, identical round messages
and confirmations, identical spot-check outcomes — the plane only changes
how many tensor passes the work takes.
"""

import numpy as np
import pytest

from repro.fleet import (
    BatchVerifier,
    FleetDevice,
    FleetRegistry,
    FleetSimulator,
    FaultModel,
    ReplayAdversary,
    respond_round as respond_fleet,
)
from repro.protocols.mutual_auth import (
    derive_challenge,
    derive_challenge_batch,
)
from repro.puf.photonic_strong import PhotonicFleet, PhotonicStrongPUF
from repro.puf import photonic_strong_family

from facade_bridge import provision_fleet

CFG = dict(challenge_bits=32, n_stages=3, response_bits=16)
FLEET = 6


@pytest.fixture(scope="module")
def fleets():
    stacked = provision_fleet(FLEET, seed=42, n_spot_crps=12, stacked=True,
                              **CFG)
    legacy = provision_fleet(FLEET, seed=42, n_spot_crps=12, stacked=False,
                             **CFG)
    return stacked, legacy


class TestStackedProvisioning:
    def test_secrets_match_per_die_path(self, fleets):
        (s_reg, s_dev, __), (l_reg, l_dev, __) = fleets
        for stacked, legacy in zip(s_dev, l_dev):
            assert stacked.device_id == legacy.device_id
            assert np.array_equal(stacked.current_response,
                                  legacy.current_response)
            s_record = s_reg.record(stacked.device_id)
            l_record = l_reg.record(legacy.device_id)
            assert np.array_equal(s_record.crp_challenges,
                                  l_record.crp_challenges)
            assert np.array_equal(s_record.crp_responses,
                                  l_record.crp_responses)

    def test_devices_are_plane_attached(self, fleets):
        (__, devices, __), __ = fleets
        plane = devices[0].plane
        assert isinstance(plane, PhotonicFleet)
        for row, device in enumerate(devices):
            assert device.plane is plane
            assert device.plane_row == row

    def test_stacked_false_leaves_devices_unattached(self, fleets):
        __, (__, devices, __) = fleets
        assert all(device.plane is None for device in devices)


class TestStackedRounds:
    def test_rounds_match_per_device_path(self, fleets):
        (s_reg, s_dev, s_ver), (l_reg, l_dev, l_ver) = fleets
        for _ in range(3):
            s_report = s_ver.authenticate_fleet(s_dev)
            l_report = l_ver.authenticate_fleet(l_dev)
            assert s_report.n_accepted == l_report.n_accepted == FLEET
            assert s_report.confirmations == l_report.confirmations
        for stacked, legacy in zip(s_dev, l_dev):
            assert np.array_equal(stacked.current_response,
                                  legacy.current_response)

    def test_respond_fleet_mixed_attachment(self, fleets):
        (__, devices, verifier), __ = fleets
        nonces = verifier.open_round([d.device_id for d in devices])
        # Half the fleet detached: grouped and per-device paths must mix
        # freely and preserve input order.
        detached = devices[1::2]
        rows = [(d, d.plane, d.plane_row) for d in detached]
        for device in detached:
            device.detach_plane()
        try:
            messages = respond_fleet(devices, nonces)
            assert [m.device_id for m in messages] == \
                [d.device_id for d in devices]
            report = verifier.verify_round(messages, nonces)
            assert report.n_accepted == FLEET
            for device in devices:
                verifier.abort(device.device_id)
                device._pending = None
        finally:
            for device, plane, row in rows:
                device.attach_plane(plane, row)

    def test_spot_check_matches_per_device_path(self):
        # Fresh fleets: spot responses depend on each device's measurement
        # counter, so both sides must start from identical histories.
        __, s_dev, s_ver = provision_fleet(FLEET, seed=43, n_spot_crps=12,
                                           stacked=True, **CFG)
        __, l_dev, l_ver = provision_fleet(FLEET, seed=43, n_spot_crps=12,
                                           stacked=False, **CFG)
        s_spot = s_ver.spot_check(s_dev, k=4)
        l_spot = l_ver.spot_check(l_dev, k=4)
        assert np.array_equal(s_spot.fractional_hd, l_spot.fractional_hd)
        assert s_spot.n_accepted == l_spot.n_accepted == FLEET

    def test_tamper_factor_travels_through_stacked_path(self, fleets):
        (__, devices, verifier), __ = fleets
        nonces = verifier.open_round([d.device_id for d in devices])
        victim = devices[0].device_id
        messages = respond_fleet(devices, nonces,
                                 tamper_factors={victim: 2.0})
        report = verifier.verify_round(messages, nonces)
        assert victim in report.failures
        assert report.failure_kinds[victim] == "clock-anomaly"
        assert report.n_accepted == FLEET - 1
        for device in devices:
            verifier.abort(device.device_id)
            device._pending = None


class TestPlaneSemantics:
    def test_plane_evaluate_matches_per_puf_batch(self):
        family = photonic_strong_family(4, seed=9, **CFG)
        plane = family.stack()
        rng = np.random.default_rng(0)
        challenges = rng.integers(0, 2, size=(4, 5, CFG["challenge_bits"]),
                                  dtype=np.uint8)
        stacked = plane.evaluate(challenges, measurements=0)
        energies = plane.slot_energies(challenges, measurements=0)
        for die in range(4):
            per_device = plane.pufs[die].evaluate_batch(
                challenges[die], measurement=0
            )
            assert np.array_equal(stacked[die], per_device)
            reference = plane.pufs[die].slot_energies_batch(
                challenges[die], measurement=0
            )
            np.testing.assert_allclose(energies[die], reference,
                                       rtol=1e-9, atol=1e-12)

    def test_measurement_counters_advance_like_per_device(self):
        family = photonic_strong_family(3, seed=9, **CFG)
        plane = family.stack()
        rng = np.random.default_rng(1)
        challenges = rng.integers(0, 2, size=(3, 1, CFG["challenge_bits"]),
                                  dtype=np.uint8)
        before = [puf._measurement_counter for puf in plane.pufs]
        plane.evaluate(challenges)           # fresh measurement per die
        after = [puf._measurement_counter for puf in plane.pufs]
        assert after == [count + 1 for count in before]
        plane.evaluate(challenges, measurements=0)   # pinned: no advance
        assert [puf._measurement_counter for puf in plane.pufs] == after

    def test_try_stack_rejects_heterogeneous(self):
        a = PhotonicStrongPUF(seed=1, die_index=0, **CFG)
        b = PhotonicStrongPUF(seed=1, die_index=1, challenge_bits=64,
                              n_stages=3, response_bits=16)
        assert PhotonicStrongPUF.try_stack([a, b]) is None
        # Mixed scrambler geometry (same readout config) must also refuse
        # to stack — not return a plane that fails at first evaluate.
        c = PhotonicStrongPUF(seed=1, die_index=2, challenge_bits=32,
                              n_stages=5, response_bits=16)
        assert PhotonicStrongPUF.try_stack([a, c]) is None
        assert PhotonicStrongPUF.try_stack([a]) is not None

    def test_family_stack_is_memoized(self):
        family = photonic_strong_family(2, seed=6, **CFG)
        assert family.stack() is family.stack()

    def test_family_response_matrix_stacked_matches_legacy(self):
        family = photonic_strong_family(3, seed=4, **CFG)
        rng = np.random.default_rng(2)
        challenges = rng.integers(0, 2, size=(4, CFG["challenge_bits"]),
                                  dtype=np.uint8)
        stacked = family.response_matrix(challenges, measurement=0,
                                         stacked=True)
        legacy = family.response_matrix(challenges, measurement=0,
                                        stacked=False)
        assert np.array_equal(stacked, legacy)


class TestBatchedDerivations:
    def test_derive_challenge_batch_matches_rows(self):
        rng = np.random.default_rng(3)
        responses = rng.integers(0, 2, size=(7, 19), dtype=np.uint8)
        batch = derive_challenge_batch(responses, 33)
        assert batch.shape == (7, 33)
        for row in range(7):
            assert np.array_equal(batch[row],
                                  derive_challenge(responses[row], 33))


class TestStackedLifecycle:
    def test_hostile_campaign_with_stacked_plane(self):
        registry, devices, verifier = provision_fleet(
            8, seed=77, stacked=True, **CFG
        )
        simulator = FleetSimulator(
            registry, devices, verifier,
            faults=FaultModel(confirmation_drop=0.2, response_drop=0.1,
                              max_retries=4),
            adversaries=[ReplayAdversary(probability=0.5)],
            seed=77,
        )
        stats = simulator.run_campaign(6)
        assert stats.desynchronized == 0
        assert stats.authenticated > 0

    def test_churned_device_falls_back_per_device(self):
        registry, devices, verifier = provision_fleet(
            4, seed=13, stacked=True, **CFG
        )
        newcomer = FleetDevice(
            "dev-churn-000001",
            PhotonicStrongPUF(seed=13, die_index=1_000_001, **CFG),
        )
        newcomer.provision(13)
        registry.enroll(newcomer, seed=13)
        fleet = devices + [newcomer]
        report = verifier.authenticate_fleet(fleet)
        assert report.n_accepted == 5

    def test_enroll_fleet_rejects_duplicates_before_committing(self):
        registry, devices, __ = provision_fleet(3, seed=31, stacked=True,
                                                **CFG)
        fresh = FleetRegistry()
        with pytest.raises(ValueError):
            fresh.enroll_fleet([devices[0], devices[1], devices[0]],
                               n_spot_crps=4, seed=31)
        # The doomed call must not leave earlier devices enrolled.
        assert len(fresh) == 0
        fresh.enroll_fleet(devices, n_spot_crps=4, seed=31)
        assert len(fresh) == 3

    def test_restored_registry_round_without_plane(self):
        registry, devices, verifier = provision_fleet(
            3, seed=21, stacked=True, **CFG
        )
        verifier.authenticate_fleet(devices)
        restored_registry = FleetRegistry.from_state(registry.to_state())
        restored = BatchVerifier.from_state(restored_registry,
                                            verifier.to_state())
        report = restored.authenticate_fleet(devices)
        assert report.n_accepted == 3
