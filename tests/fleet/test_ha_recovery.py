"""Replica nonce partitioning and commit-log crash recovery.

The two verifier-level guarantees the replicated plane
(:mod:`repro.service.ha`) is built on, proven here without sockets:

* **No nonce reuse, ever**: each replica draws nonces from its own
  residue class of the epoch space
  (``stream_epoch = nonce_epoch * n_replicas + replica_index``), so
  nonces stay globally distinct across any number of replicas and any
  number of crash/restore cycles — swept as a property test below.
* **No lost roll**: a coordinator crash *after* the device confirmed
  but *before* finalize landed leaves the registry one CRP behind the
  device.  The shared :class:`CommitLog` parks the candidate at verify
  time (write-ahead); the promoted replica proves the device rolled
  from its next MAC and completes the roll lazily.
"""

import itertools

import numpy as np
import pytest

from repro.fleet.registry import FleetRegistry
from repro.fleet.verifier import BatchVerifier, CommitLog
from repro.protocols.mutual_auth import AuthenticationFailure

from facade_bridge import provision_fleet

FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)


def assert_synchronized(registry, devices):
    for device in devices:
        assert np.array_equal(
            device.current_response,
            registry.record(device.device_id).current_response,
        ), f"{device.device_id} desynchronized"


class TestEpochPartitioning:
    def test_stream_epoch_is_the_replica_residue_class(self):
        registry, devices, _ = provision_fleet(1, seed=5, **FAST_PUF)
        for n_replicas, index, epoch in itertools.product(
                (1, 2, 3, 5), range(5), range(4)):
            if index >= n_replicas:
                continue
            verifier = BatchVerifier(registry, seed=5, nonce_epoch=epoch,
                                     replica_index=index,
                                     n_replicas=n_replicas)
            assert verifier.stream_epoch % n_replicas == index
            assert verifier.stream_epoch == epoch * n_replicas + index

    def test_defaults_reduce_to_the_legacy_stream(self):
        # A verifier with default replica parameters must issue
        # bit-identical nonces to the pre-replication code path, so
        # single-server deployments see no behavior change.
        registry, devices, _ = provision_fleet(3, seed=11, **FAST_PUF)
        ids = [device.device_id for device in devices]
        solo = BatchVerifier(registry, seed=11)
        explicit = BatchVerifier(registry, seed=11, nonce_epoch=0,
                                 replica_index=0, n_replicas=1)
        assert solo.stream_epoch == explicit.stream_epoch == 0
        assert solo.open_round(ids) == explicit.open_round(ids)

    def test_invalid_replica_geometry_rejected(self):
        registry, _, _ = provision_fleet(1, seed=5, **FAST_PUF)
        with pytest.raises(ValueError):
            BatchVerifier(registry, n_replicas=0)
        with pytest.raises(ValueError):
            BatchVerifier(registry, replica_index=2, n_replicas=2)
        with pytest.raises(ValueError):
            BatchVerifier(registry, replica_index=-1, n_replicas=3)

    @pytest.mark.parametrize("n_replicas", [2, 3, 5])
    def test_nonces_globally_distinct_across_replicas_and_crashes(
            self, n_replicas):
        # The property the chaos campaign wiretap asserts end-to-end,
        # swept directly: N replicas x M crash/restore cycles x R
        # rounds each, every nonce ever issued is unique.
        registry, devices, _ = provision_fleet(4, seed=23, **FAST_PUF)
        ids = [device.device_id for device in devices]
        issued = []
        epochs = [0] * n_replicas
        for cycle in range(3):                     # crash/restore cycles
            for index in range(n_replicas):
                # Every incarnation gets a fresh epoch floor, exactly
                # as ReplicaGroup bumps it on start/restore/promotion.
                verifier = BatchVerifier(registry, seed=23,
                                         nonce_epoch=epochs[index],
                                         replica_index=index,
                                         n_replicas=n_replicas)
                epochs[index] += 1
                for _ in range(3):                 # rounds per lifetime
                    issued.extend(verifier.open_round(ids).values())
        assert len(issued) == len(set(issued)), "nonce reuse across replicas"

    def test_from_state_bumps_epoch_but_keeps_residue(self):
        registry, devices, _ = provision_fleet(2, seed=7, **FAST_PUF)
        verifier = BatchVerifier(registry, seed=7, nonce_epoch=4,
                                 replica_index=1, n_replicas=3)
        restored = BatchVerifier.from_state(registry, verifier.to_state())
        assert restored.stream_epoch > verifier.stream_epoch
        assert restored.stream_epoch % 3 == 1
        assert restored.replica_index == 1 and restored.n_replicas == 3


class TestCommitLog:
    def test_park_commit_drop(self):
        log = CommitLog()
        log.park("dev-a", 3, np.array([1, 0, 1, 1], dtype=np.uint8))
        log.park("dev-b", 1, np.array([0, 1], dtype=np.uint8))
        assert len(log) == 2 and set(log.device_ids()) == {"dev-a", "dev-b"}
        log.commit("dev-a")
        log.drop("dev-b")
        log.drop("dev-b")                          # idempotent
        assert len(log) == 0 and log.get("dev-a") is None

    def test_state_roundtrip(self):
        log = CommitLog()
        log.park("dev-a", 9, np.array([1, 0, 1], dtype=np.uint8))
        log.park("dev-b", 2, np.array([0, 1], dtype=np.uint8))
        log.mark_exposed("dev-b")
        clone = CommitLog.from_state(log.to_state())
        entry = clone.get("dev-a")
        assert entry.session == 9
        assert entry.new_response.dtype == np.uint8
        assert np.array_equal(entry.new_response, [1, 0, 1])
        assert not entry.exposed
        assert clone.get("dev-b").exposed

    def test_park_resets_exposure(self):
        # Re-parking (a later round's candidate for the same device)
        # starts a new commit whose confirmation has not left yet.
        log = CommitLog()
        log.park("dev-a", 3, np.array([1, 0], dtype=np.uint8))
        log.mark_exposed("dev-a")
        log.park("dev-a", 4, np.array([0, 1], dtype=np.uint8))
        assert not log.get("dev-a").exposed
        log.mark_exposed("dev-missing")                # no-op, no raise


def run_round(verifier, devices):
    """One full verify pass; returns (report, nonces)."""
    nonces = verifier.open_round([d.device_id for d in devices])
    messages = [d.respond(nonces[d.device_id]) for d in devices]
    return verifier.verify_round(messages, nonces), nonces


class TestCrashRecovery:
    def _crash_after_confirm(self, seed=41, n=3):
        """Drive a round to the crash window: the victim device has
        rolled on its confirmation, but the coordinator died before
        finalize — registry one CRP behind, candidate parked."""
        registry, devices, _ = provision_fleet(n, seed=seed, **FAST_PUF)
        log = CommitLog()
        primary = BatchVerifier(registry, seed=seed, nonce_epoch=0,
                                replica_index=0, n_replicas=2,
                                commit_log=log)
        report, nonces = run_round(primary, devices)
        assert report.n_accepted == n
        victim, *rest = devices
        victim.confirm(report.confirmations[victim.device_id],
                       nonces[victim.device_id])
        for device in rest:                        # the lucky ones finalize
            device.confirm(report.confirmations[device.device_id],
                           nonces[device.device_id])
            primary.finalize(device.device_id)
        # The crash: the victim's finalize never arrives; teardown
        # aborts the session *ambiguously*, which must keep the parked
        # candidate alive for the successor.
        primary.abort(victim.device_id, ambiguous=True)
        assert log.get(victim.device_id) is not None
        return registry, devices, victim, log

    def test_promoted_replica_completes_the_roll(self):
        registry, devices, victim, log = self._crash_after_confirm()
        record = registry.record(victim.device_id)
        assert not np.array_equal(record.current_response,
                                  victim.current_response)
        promoted = BatchVerifier(registry, seed=41, nonce_epoch=1,
                                 replica_index=1, n_replicas=2,
                                 commit_log=log)
        # The victim's next message MACs with the parked candidate:
        # proof it rolled.  Recovery rolls the registry, then the round
        # verifies normally against the caught-up record.
        report, nonces = run_round(promoted, devices)
        assert report.n_accepted == len(devices)
        assert len(log) == len(devices)            # this round's parks
        for device in devices:
            device.confirm(report.confirmations[device.device_id],
                           nonces[device.device_id])
            promoted.finalize(device.device_id)
        assert len(log) == 0
        assert_synchronized(registry, devices)

    def test_sessions_count_recovered_roll(self):
        registry, devices, victim, log = self._crash_after_confirm(seed=43)
        before = int(registry.record(victim.device_id).sessions)
        promoted = BatchVerifier(registry, seed=43, nonce_epoch=1,
                                 replica_index=1, n_replicas=2,
                                 commit_log=log)
        report, nonces = run_round(promoted, devices)
        victim.confirm(report.confirmations[victim.device_id],
                       nonces[victim.device_id])
        promoted.finalize(victim.device_id)
        # Interrupted roll + this round's roll: the device is exactly
        # two sessions ahead of the crash point, none lost, none extra.
        assert int(registry.record(victim.device_id).sessions) == before + 2

    def test_unambiguous_abort_drops_the_candidate(self):
        # Device never saw the confirmation (it was dropped, not the
        # ack): both sides are still on the old CRP, so the abort is
        # unambiguous and the parked candidate must go.
        registry, devices, _ = provision_fleet(2, seed=47, **FAST_PUF)
        log = CommitLog()
        verifier = BatchVerifier(registry, seed=47, commit_log=log)
        report, nonces = run_round(verifier, devices)
        victim = devices[0]
        verifier.abort(victim.device_id)
        assert log.get(victim.device_id) is None
        devices[1].confirm(report.confirmations[devices[1].device_id],
                           nonces[devices[1].device_id])
        verifier.finalize(devices[1].device_id)
        report2, nonces2 = run_round(verifier, devices)
        assert report2.n_accepted == 2
        for device in devices:
            device.confirm(report2.confirmations[device.device_id],
                           nonces2[device.device_id])
            verifier.finalize(device.device_id)
        assert_synchronized(registry, devices)

    def test_stale_parked_entry_is_ignored_and_dropped(self):
        # A parked candidate from an *older* session (the device has
        # authenticated since through another replica) must not roll
        # the registry backwards.
        registry, devices, victim, log = self._crash_after_confirm(seed=53)
        entry = log.get(victim.device_id)
        log.park(victim.device_id, entry.session - 1, entry.new_response)
        promoted = BatchVerifier(registry, seed=53, nonce_epoch=1,
                                 replica_index=1, n_replicas=2,
                                 commit_log=log)
        sessions = int(registry.record(victim.device_id).sessions)
        report, _ = run_round(promoted, devices)
        # The victim's MAC would prove the roll, but the session stamp
        # disagrees with the registry: the entry must be discarded, not
        # applied — a session mismatch means the registry moved through
        # some other path, and applying would roll twice.
        assert int(registry.record(victim.device_id).sessions) == sessions
        assert log.get(victim.device_id) is None \
            or log.get(victim.device_id).session != entry.session - 1
        assert report.n_accepted == len(devices) - 1

    def test_exposed_entry_survives_unambiguous_abort(self):
        # The regression the chaos campaign caught: a device rolled in
        # the crash window (entry parked + exposed), then a *later*
        # attempt timed out pre-verify and the client sent an abort.
        # That abort speaks for its own attempt only — dropping the
        # exposed park would destroy the sole proof of the completed
        # roll and desynchronize the device forever.
        registry, devices, victim, log = self._crash_after_confirm(seed=61)
        log.mark_exposed(victim.device_id)
        promoted = BatchVerifier(registry, seed=61, nonce_epoch=1,
                                 replica_index=1, n_replicas=2,
                                 commit_log=log)
        promoted.abort(victim.device_id)               # stray, unambiguous
        assert log.get(victim.device_id) is not None, (
            "exposed crash-window park must survive a stray abort")
        # ... so the recovery path still completes the roll.
        report, nonces = run_round(promoted, devices)
        assert report.n_accepted == len(devices)
        for device in devices:
            device.confirm(report.confirmations[device.device_id],
                           nonces[device.device_id])
            promoted.finalize(device.device_id)
        assert_synchronized(registry, devices)

    def test_unexposed_entry_dropped_by_unambiguous_abort(self):
        # Counterpart: if the confirmation never left the server the
        # device cannot have rolled, so a clean abort discards the park.
        registry, devices, _ = provision_fleet(2, seed=67, **FAST_PUF)
        log = CommitLog()
        verifier = BatchVerifier(registry, seed=67, commit_log=log)
        run_round(verifier, devices)
        victim = devices[0]
        assert not log.get(victim.device_id).exposed
        verifier.abort(victim.device_id)
        assert log.get(victim.device_id) is None

    def test_revoked_device_entry_is_dropped(self):
        registry, devices, victim, log = self._crash_after_confirm(seed=59)
        registry.revoke(victim.device_id)
        promoted = BatchVerifier(registry, seed=59, nonce_epoch=1,
                                 replica_index=1, n_replicas=2,
                                 commit_log=log)
        survivors = [d for d in devices if d is not victim]
        nonces = promoted.open_round([d.device_id for d in survivors])
        messages = [d.respond(nonces[d.device_id]) for d in survivors]
        # The revoked victim still talks; recovery must drop its parked
        # entry instead of resurrecting it (the message itself then
        # fails the normal path, as revoked messages should).
        messages.append(victim.respond(b"\x00" * 16))
        try:
            promoted.verify_round(messages, nonces)
        except AuthenticationFailure:
            pass
        assert log.get(victim.device_id) is None
