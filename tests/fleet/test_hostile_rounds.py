"""Hostile-round behavior of BatchVerifier.verify_round.

Every test here injects one poisoned message into a round shared with
honest devices and asserts the two crash-fix invariants: the poison
fails *only its own device* (the rest of the round authenticates), and
neither side of any device desynchronizes.
"""

import numpy as np

from repro.crypto.mac import mac as compute_mac
from repro.fleet.verifier import AuthResponse
from repro.protocols.mutual_auth import FailureKind, _pad_bits
from repro.utils.serialization import decode_fields, encode_fields

from facade_bridge import provision_fleet


FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)


def forge(device, body: bytes) -> AuthResponse:
    """A message MAC'd with the device's real rolling key over any body.

    Models buggy device firmware: framing is broken but the MAC is
    honest, so the poison passes the MAC check and reaches the decoder.
    """
    tag = compute_mac(body, _pad_bits(device.current_response))
    return AuthResponse(device.device_id, body, tag)


def settle(verifier, devices, report, nonces):
    """Deliver confirmations and finalize, as authenticate_fleet would."""
    by_id = {device.device_id: device for device in devices}
    for device_id, confirmation in report.confirmations.items():
        by_id[device_id].confirm(confirmation, nonces[device_id])
        verifier.finalize(device_id)


def assert_synchronized(registry, devices):
    for device in devices:
        assert np.array_equal(
            device.current_response,
            registry.record(device.device_id).current_response,
        ), f"{device.device_id} desynchronized"


class TestMalformedBody:
    def test_undecodable_body_fails_only_that_device(self):
        registry, devices, verifier = provision_fleet(3, seed=31, **FAST_PUF)
        victim, *honest = devices
        nonces = verifier.open_round([d.device_id for d in devices])
        poison = forge(victim, b"\xff\xff\xff\xff-not-length-prefixed")
        messages = [poison] + [d.respond(nonces[d.device_id]) for d in honest]
        report = verifier.verify_round(messages, nonces)
        assert report.failure_kinds[victim.device_id] == \
            FailureKind.MALFORMED.value
        assert report.n_accepted == 2
        settle(verifier, honest, report, nonces)
        assert_synchronized(registry, devices)

    def test_wrong_field_count_fails_only_that_device(self):
        registry, devices, verifier = provision_fleet(2, seed=32, **FAST_PUF)
        victim, honest = devices
        nonces = verifier.open_round([d.device_id for d in devices])
        poison = forge(victim, encode_fields([b"\x00" * 4, b"three-fields"]))
        report = verifier.verify_round(
            [poison, honest.respond(nonces[honest.device_id])], nonces)
        assert report.failure_kinds[victim.device_id] == \
            FailureKind.MALFORMED.value
        assert honest.device_id in report.confirmations
        settle(verifier, [honest], report, nonces)
        assert_synchronized(registry, devices)

    def test_truncated_masked_field_fails_only_that_device(self):
        # The short row used to crash np.vstack for the whole round.
        registry, devices, verifier = provision_fleet(3, seed=33, **FAST_PUF)
        victim, *honest = devices
        nonces = verifier.open_round([d.device_id for d in devices])
        genuine = victim.respond(nonces[victim.device_id])
        session_raw, masked, integrity, echoed = decode_fields(genuine.body)
        truncated = encode_fields([session_raw, masked[:1], integrity, echoed])
        poison = forge(victim, truncated)
        messages = [poison] + [d.respond(nonces[d.device_id]) for d in honest]
        report = verifier.verify_round(messages, nonces)
        assert report.failure_kinds[victim.device_id] == \
            FailureKind.MALFORMED.value
        assert "masked response field" in report.failures[victim.device_id]
        assert report.n_accepted == 2
        settle(verifier, honest, report, nonces)
        assert_synchronized(registry, devices)


class TestDuplicateDevice:
    def test_second_occurrence_rejected(self):
        registry, devices, verifier = provision_fleet(2, seed=34, **FAST_PUF)
        victim, honest = devices
        nonces = verifier.open_round([d.device_id for d in devices])
        genuine = victim.respond(nonces[victim.device_id])
        # A distinct-but-valid second message for the same device: flip a
        # masked bit and re-MAC with the real key.  Before the fix this
        # silently overwrote the pending state of the genuine message.
        session_raw, masked, integrity, echoed = decode_fields(genuine.body)
        flipped = bytes([masked[0] ^ 1]) + masked[1:]
        rogue = forge(victim, encode_fields(
            [session_raw, flipped, integrity, echoed]))
        messages = [genuine, rogue,
                    honest.respond(nonces[honest.device_id])]
        report = verifier.verify_round(messages, nonces)
        assert report.failure_kinds[victim.device_id] == \
            FailureKind.DUPLICATE_DEVICE.value
        # The genuine (first) message still authenticated.
        assert victim.device_id in report.confirmations
        assert honest.device_id in report.confirmations
        settle(verifier, devices, report, nonces)
        # The rogue row did not poison the commit: both devices rolled to
        # the responses their genuine messages carried.
        assert_synchronized(registry, devices)
        assert registry.record(victim.device_id).sessions == 1

    def test_exact_duplicate_still_counts_as_duplicate_not_crash(self):
        _, devices, verifier = provision_fleet(1, seed=35, **FAST_PUF)
        device = devices[0]
        nonces = verifier.open_round([device.device_id])
        message = device.respond(nonces[device.device_id])
        report = verifier.verify_round([message, message], nonces)
        assert device.device_id in report.confirmations
        assert report.failure_kinds[device.device_id] == \
            FailureKind.DUPLICATE_DEVICE.value


class TestReplayAndRetry:
    def test_replayed_tag_within_round_lifetime(self):
        _, devices, verifier = provision_fleet(1, seed=36, **FAST_PUF)
        device = devices[0]
        nonces = verifier.open_round([device.device_id])
        message = device.respond(nonces[device.device_id])
        first = verifier.verify_round([message], nonces)
        assert first.n_accepted == 1
        # Same message again before finalize: the tag cache catches it.
        replay = verifier.verify_round([message], nonces)
        assert replay.failure_kinds[device.device_id] == \
            FailureKind.REPLAY.value

    def test_replay_after_finalize_fails_mac_not_crash(self):
        registry, devices, verifier = provision_fleet(1, seed=37, **FAST_PUF)
        device = devices[0]
        nonces = verifier.open_round([device.device_id])
        message = device.respond(nonces[device.device_id])
        report = verifier.verify_round([message], nonces)
        device.confirm(report.confirmations[device.device_id],
                       nonces[device.device_id])
        verifier.finalize(device.device_id)
        # Tag cache was pruned at finalize; the rolled CRP rejects the
        # stale message at the MAC check instead.
        late = verifier.verify_round([message], nonces)
        assert late.failure_kinds[device.device_id] == \
            FailureKind.BAD_MAC.value
        assert_synchronized(registry, devices)

    def test_lost_confirmation_then_retry_resynchronizes(self):
        registry, devices, verifier = provision_fleet(2, seed=38, **FAST_PUF)
        unlucky, steady = devices
        nonces = verifier.open_round([d.device_id for d in devices])
        report = verifier.verify_round(
            [d.respond(nonces[d.device_id]) for d in devices], nonces)
        assert report.n_accepted == 2
        # steady's confirmation arrives; unlucky's is lost in transit.
        steady.confirm(report.confirmations[steady.device_id],
                       nonces[steady.device_id])
        verifier.finalize(steady.device_id)
        verifier.abort(unlucky.device_id)
        assert registry.record(unlucky.device_id).sessions == 0
        assert registry.record(steady.device_id).sessions == 1
        # A plain retry round fully recovers both devices.
        retry = verifier.authenticate_fleet(devices)
        assert retry.n_accepted == 2
        assert_synchronized(registry, devices)
        assert registry.record(unlucky.device_id).sessions == 1
        assert registry.record(steady.device_id).sessions == 2


class TestFailureTaxonomy:
    def test_report_kinds_match_shared_taxonomy(self):
        _, devices, verifier = provision_fleet(2, seed=39, **FAST_PUF)
        tampered, _ = devices
        nonces = verifier.open_round([d.device_id for d in devices])
        messages = [tampered.respond(nonces[tampered.device_id],
                                     tamper_factor=1.3),
                    devices[1].respond(nonces[devices[1].device_id])]
        report = verifier.verify_round(messages, nonces)
        assert report.failure_kinds[tampered.device_id] == \
            FailureKind.CLOCK_ANOMALY.value
        assert set(report.failure_kinds) == set(report.failures)
        assert all(kind in {k.value for k in FailureKind}
                   for kind in report.failure_kinds.values())

    def test_verifier_memory_flat_after_finalize(self):
        _, devices, verifier = provision_fleet(2, seed=40, **FAST_PUF)
        for _ in range(5):
            report = verifier.authenticate_fleet(devices)
            assert report.n_accepted == 2
        assert not verifier._pending
        assert not verifier._seen_tags

    def test_tag_cache_bounded_for_persistently_failing_device(self):
        # A device that never reaches finalize (e.g. tampered forever)
        # must not grow the replay cache: rejected messages fail the same
        # deterministic checks again, so their tags are never stored.
        _, devices, verifier = provision_fleet(1, seed=41, **FAST_PUF)
        device = devices[0]
        for _ in range(5):
            nonces = verifier.open_round([device.device_id])
            message = device.respond(nonces[device.device_id],
                                     tamper_factor=1.5)
            report = verifier.verify_round([message], nonces)
            assert report.failure_kinds[device.device_id] == \
                FailureKind.CLOCK_ANOMALY.value
        assert sum(len(tags) for tags in verifier._seen_tags.values()) == 0
