"""Fleet enrollment registry + batch verifier behavior."""

import numpy as np
import pytest

from repro.fleet import (
    BatchVerifier,
    FleetDevice,
    FleetRegistry,
)
from repro.protocols.mutual_auth import AuthenticationFailure
from repro.puf.photonic_strong import PhotonicStrongPUF

from facade_bridge import provision_fleet


FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)


@pytest.fixture(scope="module")
def fleet():
    return provision_fleet(3, seed=42, n_spot_crps=24, **FAST_PUF)


class TestRegistry:
    def test_enrollment_state(self, fleet):
        registry, devices, _ = fleet
        assert len(registry) == 3
        for device in devices:
            assert device.device_id in registry
            record = registry.record(device.device_id)
            assert record.challenge_bits == 32
            assert record.current_response.size == 16
            assert record.crp_challenges.shape == (24, 32)
            assert record.crp_responses.shape == (24, 16)
            assert record.spot_crps_left == record.crp_used.size
        assert registry.storage_bytes > 0

    def test_duplicate_enrollment_rejected(self):
        registry = FleetRegistry()
        device = FleetDevice("dup", PhotonicStrongPUF(seed=7, **FAST_PUF))
        device.provision(seed=7)
        registry.enroll(device)
        with pytest.raises(ValueError):
            registry.enroll(device)

    def test_unknown_device_rejected(self, fleet):
        registry, _, _ = fleet
        with pytest.raises(AuthenticationFailure):
            registry.record("nobody")

    def test_response_matrix_stacks_current_responses(self, fleet):
        registry, devices, _ = fleet
        ids = [d.device_id for d in devices]
        matrix = registry.response_matrix(ids)
        assert matrix.shape == (3, 16)
        assert np.array_equal(matrix[0], registry.record(ids[0]).current_response)


class TestBatchAuthentication:
    def test_rounds_roll_the_fleet(self):
        registry, devices, verifier = provision_fleet(3, seed=11, **FAST_PUF)
        before = registry.response_matrix([d.device_id for d in devices]).copy()
        for _ in range(3):
            report = verifier.authenticate_fleet(devices)
            assert report.n_accepted == 3
            assert not report.failures
        after = registry.response_matrix([d.device_id for d in devices])
        assert not np.array_equal(before, after)  # CRPs rolled forward
        for device in devices:
            assert registry.record(device.device_id).sessions == 3
            # Device and verifier stay in sync on the rolling secret.
            assert np.array_equal(device.current_response,
                                  registry.record(device.device_id).current_response)

    def test_tampered_device_rejected_others_pass(self):
        _, devices, verifier = provision_fleet(3, seed=12, **FAST_PUF)
        devices[1].current_response = 1 - devices[1].current_response
        report = verifier.authenticate_fleet(devices)
        assert report.n_accepted == 2
        assert "MAC" in report.failures[devices[1].device_id]

    def test_wrong_firmware_hash_rejected(self):
        _, devices, verifier = provision_fleet(2, seed=13, **FAST_PUF)
        devices[0].firmware_hash = b"\x00" * 32
        report = verifier.authenticate_fleet(devices)
        assert devices[0].device_id in report.failures
        assert "firmware" in report.failures[devices[0].device_id]

    def test_replayed_message_rejected(self):
        _, devices, verifier = provision_fleet(1, seed=14, **FAST_PUF)
        device = devices[0]
        nonces = verifier.open_round([device.device_id])
        response = device.respond(nonces[device.device_id])
        first = verifier.verify_round([response], nonces)
        assert first.n_accepted == 1
        device.confirm(first.confirmations[device.device_id],
                       nonces[device.device_id])
        replay = verifier.verify_round([response], nonces)
        assert "replay" in replay.failures[device.device_id]

    def test_tampered_clock_count_rejected(self):
        _, devices, verifier = provision_fleet(1, seed=18, **FAST_PUF)
        device = devices[0]
        nonces = verifier.open_round([device.device_id])
        slow = device.respond(nonces[device.device_id], tamper_factor=1.2)
        report = verifier.verify_round([slow], nonces)
        assert "clock count" in report.failures[device.device_id]

    def test_lost_confirmation_does_not_desynchronize(self):
        registry, devices, verifier = provision_fleet(1, seed=19, **FAST_PUF)
        device = devices[0]
        nonces = verifier.open_round([device.device_id])
        response = device.respond(nonces[device.device_id])
        report = verifier.verify_round([response], nonces)
        assert report.n_accepted == 1
        # The confirmation is never delivered: the registry must still hold
        # the old CRP (two-phase commit), so a plain retry succeeds.
        assert registry.record(device.device_id).sessions == 0
        retry = verifier.authenticate_fleet(devices)
        assert retry.n_accepted == 1
        assert registry.record(device.device_id).sessions == 1

    def test_abort_discards_pending_session(self):
        registry, devices, verifier = provision_fleet(1, seed=20, **FAST_PUF)
        device = devices[0]
        nonces = verifier.open_round([device.device_id])
        report = verifier.verify_round(
            [device.respond(nonces[device.device_id])], nonces)
        assert report.n_accepted == 1
        verifier.abort(device.device_id)
        assert registry.record(device.device_id).sessions == 0
        assert verifier.authenticate_fleet(devices).n_accepted == 1

    def test_unknown_device_fails_round_open(self):
        _, _, verifier = provision_fleet(1, seed=15, **FAST_PUF)
        with pytest.raises(AuthenticationFailure):
            verifier.open_round(["ghost"])

    def test_unprovisioned_device_cannot_respond(self):
        device = FleetDevice("bare", PhotonicStrongPUF(seed=8, **FAST_PUF))
        with pytest.raises(AuthenticationFailure):
            device.respond(b"\x00" * 16)


class TestSpotCheck:
    def test_honest_fleet_accepted(self, fleet):
        _, devices, verifier = fleet
        report = verifier.spot_check(devices, k=6)
        assert report.n_accepted == 3
        assert np.all(report.fractional_hd <= report.threshold)

    def test_spot_indices_burned(self, fleet):
        registry, devices, verifier = fleet
        left_before = registry.record(devices[0].device_id).spot_crps_left
        verifier.spot_check(devices, k=4)
        left_after = registry.record(devices[0].device_id).spot_crps_left
        assert left_after == left_before - 4

    def test_pool_exhaustion_raises(self):
        _, devices, verifier = provision_fleet(1, seed=16, n_spot_crps=4,
                                               **FAST_PUF)
        verifier.spot_check(devices, k=4)
        with pytest.raises(AuthenticationFailure):
            verifier.spot_check(devices, k=1)

    def test_cloned_device_rejected(self):
        registry, devices, verifier = provision_fleet(1, seed=17,
                                                      n_spot_crps=16, **FAST_PUF)
        # A clone built from the same design but a different die.
        clone_puf = PhotonicStrongPUF(seed=17, die_index=99, **FAST_PUF)
        clone = FleetDevice(devices[0].device_id, clone_puf)
        report = verifier.spot_check([clone], k=8, threshold=0.15)
        assert report.n_accepted == 0
        assert report.fractional_hd[0] > 0.15


class TestVerifierConstruction:
    def test_verifier_on_existing_registry(self, fleet):
        registry, devices, _ = fleet
        fresh = BatchVerifier(registry, seed=99)
        report = fresh.authenticate_fleet(devices)
        assert report.n_accepted == 3
