"""Registry/device/verifier state capture and npz round-trips."""

import numpy as np
import pytest

from repro.fleet import (
    BatchVerifier,
    FleetDevice,
    FleetRegistry,
)
from repro.protocols.mutual_auth import AuthenticationFailure
from repro.utils.serialization import load_state, save_state

from facade_bridge import provision_fleet


FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)


class TestStateArchive:
    def test_save_load_round_trip(self, tmp_path):
        manifest = {"kind": "test", "n": 3}
        arrays = {"a": np.arange(6, dtype=np.uint8).reshape(2, 3),
                  "mask": np.array([True, False])}
        written = save_state(str(tmp_path / "state"), manifest, arrays)
        assert written.endswith(".npz")
        loaded_manifest, loaded_arrays = load_state(written)
        assert loaded_manifest == manifest
        assert set(loaded_arrays) == {"a", "mask"}
        assert np.array_equal(loaded_arrays["a"], arrays["a"])
        assert loaded_arrays["mask"].dtype == bool

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_state(str(tmp_path / "bad"), {},
                       {"manifest_json": np.zeros(1)})

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, x=np.zeros(2))
        with pytest.raises(ValueError):
            load_state(str(path))


class TestRegistryPersistence:
    def test_state_round_trip_preserves_records(self):
        registry, devices, verifier = provision_fleet(
            3, seed=51, n_spot_crps=8, **FAST_PUF)
        verifier.authenticate_fleet(devices)  # roll once so sessions > 0
        verifier.spot_check(devices, k=3)     # burn some spot CRPs
        clone = FleetRegistry.from_state(registry.to_state())
        assert clone.device_ids() == registry.device_ids()
        for device_id in registry.device_ids():
            original, restored = registry.record(device_id), \
                clone.record(device_id)
            assert restored.sessions == original.sessions == 1
            assert restored.challenge_bits == original.challenge_bits
            assert restored.firmware_hash == original.firmware_hash
            assert restored.expected_clock_count == \
                original.expected_clock_count
            assert np.array_equal(restored.current_response,
                                  original.current_response)
            assert np.array_equal(restored.crp_challenges,
                                  original.crp_challenges)
            assert np.array_equal(restored.crp_responses,
                                  original.crp_responses)
            assert np.array_equal(restored.crp_used, original.crp_used)
            assert restored.spot_crps_left == original.spot_crps_left

    def test_state_is_a_value_capture(self):
        registry, devices, verifier = provision_fleet(
            1, seed=52, n_spot_crps=8, **FAST_PUF)
        state = registry.to_state()
        before = registry.record(devices[0].device_id).current_response.copy()
        verifier.authenticate_fleet(devices)   # mutates the live registry
        verifier.spot_check(devices, k=4)
        clone = FleetRegistry.from_state(state)
        record = clone.record(devices[0].device_id)
        assert np.array_equal(record.current_response, before)
        assert record.sessions == 0
        assert record.spot_crps_left == 8

    def test_file_round_trip(self, tmp_path):
        registry, devices, verifier = provision_fleet(
            2, seed=53, n_spot_crps=4, **FAST_PUF)
        verifier.authenticate_fleet(devices)
        written = registry.save(str(tmp_path / "registry"))
        loaded = FleetRegistry.load(written)
        assert loaded.storage_bytes == registry.storage_bytes
        for device_id in registry.device_ids():
            assert np.array_equal(
                loaded.record(device_id).current_response,
                registry.record(device_id).current_response,
            )

    def test_restored_registry_authenticates(self):
        registry, devices, verifier = provision_fleet(3, seed=54, **FAST_PUF)
        verifier.authenticate_fleet(devices)
        restored = FleetRegistry.from_state(registry.to_state())
        fresh = BatchVerifier.from_state(restored, verifier.to_state())
        report = fresh.authenticate_fleet(devices)
        assert report.n_accepted == 3
        assert not report.failures

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            FleetRegistry.from_state(
                {"manifest": {"format": "other"}, "arrays": {}})
        with pytest.raises(ValueError):
            FleetRegistry.from_state(
                {"manifest": {"format": "fleet-registry", "version": 99,
                              "devices": []}, "arrays": {}})

    def test_revoke_removes_record(self):
        registry, devices, verifier = provision_fleet(2, seed=55, **FAST_PUF)
        victim = devices[0].device_id
        registry.revoke(victim)
        assert victim not in registry
        assert len(registry) == 1
        with pytest.raises(AuthenticationFailure):
            registry.record(victim)
        with pytest.raises(AuthenticationFailure):
            registry.revoke(victim)


class TestDeviceState:
    def test_round_trip_preserves_session_state(self):
        registry, devices, verifier = provision_fleet(1, seed=56, **FAST_PUF)
        device = devices[0]
        verifier.authenticate_fleet(devices)
        clone = FleetDevice.from_state(device.to_state(), device.puf)
        assert clone.device_id == device.device_id
        assert clone.firmware_hash == device.firmware_hash
        assert clone.clock_count == device.clock_count
        assert clone._session == device._session == 1
        assert np.array_equal(clone.current_response,
                              device.current_response)
        # The rebuilt device authenticates against the live registry.
        report = verifier.authenticate_fleet([clone])
        assert report.n_accepted == 1

    def test_unprovisioned_round_trip(self):
        from repro.puf.photonic_strong import PhotonicStrongPUF

        puf = PhotonicStrongPUF(seed=57, **FAST_PUF)
        device = FleetDevice("bare", puf)
        clone = FleetDevice.from_state(device.to_state(), puf)
        assert clone.current_response is None


class TestVerifierState:
    def test_nonce_counter_survives_restart(self):
        registry, devices, verifier = provision_fleet(2, seed=58, **FAST_PUF)
        verifier.authenticate_fleet(devices)
        counter = verifier._nonce_counter
        assert counter > 0
        restarted = BatchVerifier.from_state(registry, verifier.to_state())
        assert restarted._nonce_counter == counter
        # Fresh nonces only: nothing issued before the snapshot repeats.
        replayer = BatchVerifier(registry, seed=verifier.seed)
        issued_before = set()
        for _ in range(counter):
            issued_before |= set(
                replayer.open_round([devices[0].device_id]).values())
        after = set(restarted.open_round(
            [d.device_id for d in devices]).values())
        assert len(issued_before) == counter
        assert not issued_before & after

    def test_stale_checkpoint_never_reissues_nonces(self):
        # Snapshot early, keep running, crash, restore the *old* state:
        # the epoch bump must keep every post-restart nonce fresh even
        # though the restored counter lags the crashed verifier's.
        registry, devices, verifier = provision_fleet(2, seed=59, **FAST_PUF)
        stale_state = verifier.to_state()
        issued_after_snapshot = set()
        for _ in range(3):
            nonces = verifier.open_round([d.device_id for d in devices])
            issued_after_snapshot |= set(nonces.values())
        restarted = BatchVerifier.from_state(registry, stale_state)
        assert restarted._nonce_counter < verifier._nonce_counter
        reissued = set()
        for _ in range(5):
            reissued |= set(restarted.open_round(
                [d.device_id for d in devices]).values())
        assert not issued_after_snapshot & reissued

    def test_epoch_advances_on_every_restore(self):
        registry, _, verifier = provision_fleet(1, seed=60, **FAST_PUF)
        once = BatchVerifier.from_state(registry, verifier.to_state())
        twice = BatchVerifier.from_state(registry, once.to_state())
        assert (verifier._nonce_epoch, once._nonce_epoch,
                twice._nonce_epoch) == (0, 1, 2)
