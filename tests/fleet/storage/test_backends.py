"""Registry storage backends: contract, equivalence, and durability.

The memory backend is the reference (bit-for-bit the historical
``FleetRegistry`` behavior); every test here that runs parametrized
over both backends pins the sharded out-of-core store against it —
same records, same draws, same accounting, same state captures.  The
sharded-only tests cover what the memory backend has no analogue for:
WAL crash replay, LRU residency bounds, incremental checkpoints with
generation-guarded pointer states, and compaction.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.fleet.registry import (
    STATE_FORMAT,
    STATE_VERSION,
    DeviceRecord,
    FleetRegistry,
)
from repro.fleet.storage import ShardedFileBackend, make_backend
from repro.protocols.mutual_auth import AuthenticationFailure, FailureKind

FIXTURES = Path(__file__).parent.parent / "fixtures"

CHALLENGE_BITS = 24
RESPONSE_BITS = 8
N_POOL = 16


class PoolPUF:
    """Deterministic fake PUF: cheap enough for storage-layer tests."""

    challenge_bits = CHALLENGE_BITS
    response_bits = RESPONSE_BITS

    def __init__(self, salt: int):
        self.salt = salt

    def evaluate_batch(self, challenges, measurement=0):
        rng = np.random.default_rng(
            self.salt * 100_003 + int(challenges.sum()) + measurement)
        return rng.integers(0, 2, size=(len(challenges), RESPONSE_BITS),
                            dtype=np.uint8)


class PoolDevice:
    def __init__(self, index: int):
        self.device_id = f"dev-{index:05d}"
        self.puf = PoolPUF(index)
        self.current_response = np.asarray(
            np.arange(RESPONSE_BITS) % 2, dtype=np.uint8)
        self.firmware_hash = bytes([index % 256]) * 32
        self.clock_count = 1000 + index


def fresh_registry(backend_name, tmp_path, **kwargs):
    if backend_name == "memory":
        return FleetRegistry()
    return FleetRegistry(make_backend(
        "sharded", root=str(tmp_path / "shards"), **kwargs))


def enroll_some(registry, n=12, n_spot_crps=N_POOL, seed=5):
    return registry.enroll_fleet([PoolDevice(i) for i in range(n)],
                                 n_spot_crps=n_spot_crps, seed=seed)


def assert_records_equal(a: DeviceRecord, b: DeviceRecord):
    assert a.device_id == b.device_id
    assert a.challenge_bits == b.challenge_bits
    assert a.sessions == b.sessions
    assert a.firmware_hash == b.firmware_hash
    assert a.expected_clock_count == b.expected_clock_count
    for field in ("current_response", "crp_challenges",
                  "crp_responses", "crp_used"):
        assert np.array_equal(getattr(a, field), getattr(b, field)), field


@pytest.fixture(params=["memory", "sharded"])
def registry(request, tmp_path):
    registry = fresh_registry(request.param, tmp_path)
    yield registry
    registry.close()


class TestBackendContract:
    def test_enroll_get_len_contains(self, registry):
        records = enroll_some(registry, 6)
        assert len(registry) == 6
        assert all(r.device_id in registry for r in records)
        assert "dev-99999" not in registry
        fetched = registry.record("dev-00003")
        assert_records_equal(fetched, records[3])

    def test_duplicate_enroll_rejected(self, registry):
        enroll_some(registry, 3)
        with pytest.raises(ValueError, match="already enrolled"):
            registry.enroll(PoolDevice(1), n_spot_crps=4, seed=5)

    def test_missing_device_uniform_failure(self, registry):
        with pytest.raises(AuthenticationFailure) as excinfo:
            registry.record("dev-absent")
        assert excinfo.value.kind is FailureKind.NOT_ENROLLED

    def test_revoke_returns_record_and_forgets(self, registry):
        enroll_some(registry, 4)
        revoked = registry.revoke("dev-00002")
        assert revoked.device_id == "dev-00002"
        assert "dev-00002" not in registry
        assert len(registry) == 3
        with pytest.raises(AuthenticationFailure):
            registry.revoke("dev-00002")

    def test_roll_advances_response_and_sessions(self, registry):
        enroll_some(registry, 2)
        new = np.asarray([1] * RESPONSE_BITS, dtype=np.uint8)
        registry.roll("dev-00000", new)
        record = registry.record("dev-00000")
        assert record.sessions == 1
        assert np.array_equal(record.current_response, new)

    def test_iteration_matches_device_ids(self, registry):
        records = enroll_some(registry, 5)
        ids = [r.device_id for r in records]
        assert registry.device_ids() == ids
        assert list(registry.iter_device_ids()) == ids
        assert [r.device_id for r in registry.iter_records()] == ids

    def test_draw_spot_indices_burns(self, registry):
        enroll_some(registry, 2)
        rng = np.random.default_rng(11)
        first = registry.draw_spot_indices("dev-00000", 6, rng)
        assert first.size == 6
        record = registry.record("dev-00000")
        assert record.crp_used[first].all()
        assert record.spot_crps_left == N_POOL - 6
        second = registry.draw_spot_indices("dev-00000", 6, rng)
        assert not np.intersect1d(first, second).size
        with pytest.raises(AuthenticationFailure) as excinfo:
            registry.draw_spot_indices("dev-00000", 6, rng)
        assert excinfo.value.kind is FailureKind.POOL_EXHAUSTED

    def test_storage_bytes_tracks_cold_recount(self, registry):
        """The running total must match an O(n) recount at every step."""
        def recount():
            return sum(r.storage_bytes for r in registry.iter_records())

        assert registry.storage_bytes == 0
        enroll_some(registry, 8)
        assert registry.storage_bytes == recount()
        registry.roll("dev-00001",
                      np.zeros(RESPONSE_BITS, dtype=np.uint8))
        assert registry.storage_bytes == recount()
        registry.revoke("dev-00004")
        assert registry.storage_bytes == recount()
        registry.enroll(PoolDevice(80), n_spot_crps=N_POOL, seed=5)
        assert registry.storage_bytes == recount()

    def test_transaction_scope_is_reentrant(self, registry):
        enroll_some(registry, 3)
        with registry.transaction():
            registry.roll("dev-00000",
                          np.ones(RESPONSE_BITS, dtype=np.uint8))
            with registry.transaction():
                registry.roll("dev-00001",
                              np.ones(RESPONSE_BITS, dtype=np.uint8))
        assert registry.record("dev-00000").sessions == 1
        assert registry.record("dev-00001").sessions == 1


class TestCrossBackendEquivalence:
    def test_same_records_same_draws_same_capture(self, tmp_path):
        mem = fresh_registry("memory", tmp_path)
        shd = fresh_registry("sharded", tmp_path,
                             n_shards=5, resident_records=3)
        for registry in (mem, shd):
            enroll_some(registry, 10)
        rng_mem, rng_shd = (np.random.default_rng(3),
                            np.random.default_rng(3))
        for step in range(20):
            device_id = f"dev-{step % 10:05d}"
            assert np.array_equal(
                mem.draw_spot_indices(device_id, 2, rng_mem),
                shd.draw_spot_indices(device_id, 2, rng_shd))
            roll = np.asarray((np.arange(RESPONSE_BITS) + step) % 2,
                              dtype=np.uint8)
            mem.roll(device_id, roll)
            shd.roll(device_id, roll)
        mem.revoke("dev-00007")
        shd.revoke("dev-00007")
        for device_id in mem.iter_device_ids():
            assert_records_equal(mem.record(device_id),
                                 shd.record(device_id))
        assert mem.storage_bytes == shd.storage_bytes
        # Forced-monolithic captures are byte-identical.
        mem_state = mem.to_state()
        shd_state = shd.to_state(full=True)
        assert mem_state["manifest"] == shd_state["manifest"]
        assert mem_state["arrays"].keys() == shd_state["arrays"].keys()
        for key in mem_state["arrays"]:
            assert np.array_equal(mem_state["arrays"][key],
                                  shd_state["arrays"][key]), key
        shd.close()

    def test_monolithic_state_loads_into_either_backend(self, tmp_path):
        source = fresh_registry("memory", tmp_path)
        enroll_some(source, 6)
        source.roll("dev-00002", np.ones(RESPONSE_BITS, dtype=np.uint8))
        state = source.to_state()
        for target in (None, make_backend("sharded", n_shards=3)):
            restored = FleetRegistry.from_state(state, backend=target)
            for device_id in source.iter_device_ids():
                assert_records_equal(source.record(device_id),
                                     restored.record(device_id))
            assert restored.storage_bytes == source.storage_bytes
            restored.close()


class TestShardedDurability:
    def make(self, tmp_path, **kwargs):
        kwargs.setdefault("n_shards", 4)
        return FleetRegistry(ShardedFileBackend(
            str(tmp_path / "shards"), **kwargs))

    def test_crash_replay_recovers_unsnapshotted_mutations(self, tmp_path):
        registry = self.make(tmp_path)
        enroll_some(registry, 8)
        registry.to_state()                       # checkpoint
        rng = np.random.default_rng(2)
        burned = registry.draw_spot_indices("dev-00003", 4, rng)
        registry.roll("dev-00005", np.ones(RESPONSE_BITS, dtype=np.uint8))
        registry.revoke("dev-00006")
        registry.enroll(PoolDevice(90), n_spot_crps=N_POOL, seed=5)
        expected = {device_id: registry.record(device_id)
                    for device_id in registry.iter_device_ids()}
        # Crash: drop the backend without checkpointing, reopen the root.
        del registry
        recovered = self.make(tmp_path)
        assert sorted(recovered.iter_device_ids()) == sorted(expected)
        assert recovered.record("dev-00003").crp_used[burned].all()
        assert recovered.record("dev-00005").sessions == 1
        assert "dev-00006" not in recovered
        for device_id, record in expected.items():
            assert_records_equal(record, recovered.record(device_id))
        assert recovered.storage_bytes == \
            sum(r.storage_bytes for r in recovered.iter_records())
        recovered.close()

    def test_pointer_restore_discards_post_snapshot_journal(self, tmp_path):
        registry = self.make(tmp_path)
        enroll_some(registry, 6)
        state = registry.to_state()
        assert state["manifest"]["format"] == STATE_FORMAT
        assert state["manifest"]["version"] == 2
        assert state["arrays"] == {}
        registry.roll("dev-00000", np.ones(RESPONSE_BITS, dtype=np.uint8))
        registry.backend.close()
        restored = FleetRegistry.from_state(state)
        assert restored.record("dev-00000").sessions == 0
        restored.close()

    def test_generation_guard_rejects_superseded_pointer(self, tmp_path):
        registry = self.make(tmp_path)
        enroll_some(registry, 4)
        stale = registry.to_state()
        registry.roll("dev-00000", np.ones(RESPONSE_BITS, dtype=np.uint8))
        registry.to_state()                       # generation moves on
        registry.backend.close()
        with pytest.raises(ValueError, match="superseded"):
            FleetRegistry.from_state(stale)

    def test_checkpoint_is_incremental_and_idempotent(self, tmp_path):
        registry = self.make(tmp_path)
        backend = registry.backend
        enroll_some(registry, 8)
        first = backend.checkpoint()
        assert backend.checkpoint() == first      # nothing dirty: no-op
        registry.roll("dev-00001", np.ones(RESPONSE_BITS, dtype=np.uint8))
        assert backend.checkpoint() == first + 1
        # The WAL is truncated by a checkpoint.
        assert os.path.getsize(os.path.join(backend.root, "wal.log")) == 0
        registry.close()

    def test_lru_bounds_resident_records(self, tmp_path):
        registry = self.make(tmp_path, resident_records=3)
        backend = registry.backend
        enroll_some(registry, 12)
        backend.checkpoint()
        for device_id in registry.iter_device_ids():
            registry.record(device_id)
            assert backend.resident_count <= 3
        assert backend.stats["evictions"] > 0
        # Dirty records stay pinned past the cap until the next
        # checkpoint flushes them.
        with registry.transaction():
            for device_id in list(registry.iter_device_ids())[:6]:
                registry.roll(device_id,
                              np.ones(RESPONSE_BITS, dtype=np.uint8))
        assert backend.resident_count >= 6
        backend.checkpoint()
        assert backend.resident_count <= 3
        registry.close()

    def test_shrinking_resident_cap_evicts_immediately(self, tmp_path):
        registry = self.make(tmp_path, resident_records=8)
        backend = registry.backend
        enroll_some(registry, 8)
        backend.checkpoint()
        for device_id in registry.iter_device_ids():
            registry.record(device_id)
        assert backend.resident_count == 8
        backend.resident_records = 2
        assert backend.resident_records == 2
        assert backend.resident_count <= 2     # no fault needed to trim
        with pytest.raises(ValueError, match="resident_records"):
            backend.resident_records = 0
        registry.close()

    def test_pool_pages_are_lazy(self, tmp_path):
        registry = self.make(tmp_path, resident_records=2)
        enroll_some(registry, 6)
        backend = registry.backend
        backend.checkpoint()
        faults_before = backend.stats["faults"]
        record = registry.record("dev-00000")
        assert backend.stats["faults"] == faults_before + 1
        # Pool arrays come back as read-only mmap views, not copies.
        assert not record.crp_challenges.flags.writeable
        assert not record.crp_responses.flags.writeable
        registry.close()

    def test_compact_reclaims_revoked_bytes(self, tmp_path):
        registry = self.make(tmp_path, n_shards=2)
        enroll_some(registry, 10)
        registry.to_state()
        before = {r.device_id: r for r in registry.iter_records()}
        for index in (1, 3, 5, 7):
            registry.revoke(f"dev-{index:05d}")
            before.pop(f"dev-{index:05d}")

        def pool_file_bytes():
            backend = registry.backend
            return sum(
                os.path.getsize(os.path.join(backend.root, "shards", name))
                for name in os.listdir(os.path.join(backend.root, "shards"))
                if name.startswith("pool-"))

        stale = pool_file_bytes()
        registry.backend.compact()
        assert pool_file_bytes() < stale
        for device_id, record in before.items():
            assert_records_equal(record, registry.record(device_id))
        registry.close()

    def test_put_rejects_rolled_response_resize(self, tmp_path):
        registry = self.make(tmp_path)
        enroll_some(registry, 1)
        with pytest.raises(ValueError, match="fixed-slot"):
            registry.roll("dev-00000", np.ones(4, dtype=np.uint8))
        registry.close()


class TestLegacyArchive:
    def test_v04_fixture_still_loads(self):
        """The checked-in 0.4-era monolithic npz opens unchanged."""
        registry = FleetRegistry.load(
            str(FIXTURES / "legacy_registry_v04.npz"))
        assert registry.backend.name == "memory"
        assert len(registry) == 4
        assert registry.device_ids() == [f"dev-{i:06d}" for i in range(4)]
        for record in registry.iter_records():
            assert record.sessions == 1           # one committed round
            assert record.crp_challenges.shape == (8, 32)
            assert record.spot_crps_left == 8
        assert registry.storage_bytes == \
            sum(r.storage_bytes for r in registry.iter_records())

    def test_v04_fixture_migrates_to_sharded(self, tmp_path):
        reference = FleetRegistry.load(
            str(FIXTURES / "legacy_registry_v04.npz"))
        migrated = FleetRegistry.load(
            str(FIXTURES / "legacy_registry_v04.npz"),
            backend=make_backend("sharded", root=str(tmp_path / "m")))
        assert migrated.backend.name == "sharded"
        for device_id in reference.iter_device_ids():
            assert_records_equal(reference.record(device_id),
                                 migrated.record(device_id))
        # And back out again through the portable archive.
        path = migrated.save(str(tmp_path / "back.npz"), full=True)
        round_tripped = FleetRegistry.load(path)
        for device_id in reference.iter_device_ids():
            assert_records_equal(reference.record(device_id),
                                 round_tripped.record(device_id))
        migrated.close()

    def test_state_version_constants_frozen(self):
        assert STATE_FORMAT == "fleet-registry"
        assert STATE_VERSION == 1
