"""FleetSimulator campaigns: faults, adversaries, churn, crash/restore.

The headline test is the acceptance campaign: >= 50 rounds over >= 64
devices with 20% confirmation loss, replay + tamper adversaries and one
mid-campaign verifier crash/restore — ending with zero desynchronized
devices.
"""

import numpy as np
import pytest

from repro.fleet import (
    CorruptionAdversary,
    FaultModel,
    FleetSimulator,
    ReplayAdversary,
    TamperAdversary,
    photonic_device_factory,
)
from repro.protocols.mutual_auth import FailureKind
from repro.service import AuthService, FleetConfig


from facade_bridge import provision_fleet

FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)


def build_simulator(n_devices, seed, **kwargs):
    # Lifecycle simulation is just another client of the facade.
    service = AuthService.provision(FleetConfig(
        n_devices=n_devices, seed=seed, puf=FAST_PUF))
    return FleetSimulator.from_service(service, **kwargs)


class TestFaultModelValidation:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultModel(confirmation_drop=1.5)
        with pytest.raises(ValueError):
            FaultModel(max_retries=-1)
        with pytest.raises(ValueError):
            FaultModel(min_fleet_size=0)


class TestHappyCampaign:
    def test_faultless_campaign_authenticates_everything(self):
        simulator = build_simulator(4, seed=61)
        stats = simulator.run_campaign(5)
        assert stats.rounds == 5
        assert stats.authenticated == 20
        assert stats.retries == 0
        assert stats.desynchronized == 0
        assert not stats.failures_by_kind

    def test_round_outcome_reports(self):
        simulator = build_simulator(3, seed=62)
        outcome = simulator.run_round()
        assert outcome.round_index == 1
        assert len(outcome.authenticated) == 3
        assert not outcome.unresolved
        assert len(outcome.reports) == 1


class TestLossyCampaign:
    def test_confirmation_loss_retries_without_desync(self):
        simulator = build_simulator(
            6, seed=63,
            faults=FaultModel(confirmation_drop=0.3, max_retries=4),
        )
        stats = simulator.run_campaign(10)
        assert stats.dropped_confirmations > 0
        assert stats.retries > 0
        assert stats.desynchronized == 0
        # Sessions rolled on both sides stay equal per device.
        for device_id, device in simulator.devices.items():
            assert device._session == \
                simulator.registry.record(device_id).sessions

    def test_request_and_response_loss(self):
        simulator = build_simulator(
            5, seed=64,
            faults=FaultModel(request_drop=0.2, response_drop=0.2),
        )
        stats = simulator.run_campaign(8)
        assert stats.dropped_requests > 0
        assert stats.dropped_responses > 0
        assert stats.desynchronized == 0


class TestAdversarialCampaign:
    def test_corruption_adversary_never_desynchronizes(self):
        simulator = build_simulator(
            5, seed=65,
            adversaries=[CorruptionAdversary(probability=0.3)],
        )
        stats = simulator.run_campaign(8)
        assert stats.adversary_messages > 0
        hostile_kinds = {FailureKind.BAD_MAC.value,
                         FailureKind.MALFORMED.value}
        assert hostile_kinds & set(stats.failures_by_kind)
        assert stats.desynchronized == 0

    def test_tamper_adversary_rejected_as_clock_anomaly(self):
        simulator = build_simulator(
            4, seed=66,
            adversaries=[TamperAdversary(probability=0.4, factor=1.5)],
        )
        stats = simulator.run_campaign(6)
        assert stats.failures_by_kind.get(FailureKind.CLOCK_ANOMALY.value)
        assert stats.desynchronized == 0

    def test_replay_adversary_never_authenticates_stale_traffic(self):
        simulator = build_simulator(
            4, seed=67,
            adversaries=[ReplayAdversary(probability=0.8)],
        )
        stats = simulator.run_campaign(8)
        assert stats.adversary_messages > 0
        # Stale injections die as MAC/replay/duplicate failures, and every
        # device still matches the registry at the end.
        assert stats.desynchronized == 0
        expected = stats.rounds * len(simulator.devices)
        assert stats.authenticated >= 0.9 * expected


class TestChurnCampaign:
    def test_enrollment_and_revocation_mid_campaign(self):
        simulator = build_simulator(
            4, seed=68,
            faults=FaultModel(enroll_prob=0.5, revoke_prob=0.3,
                              min_fleet_size=2),
            device_factory=photonic_device_factory(seed=68, **FAST_PUF),
        )
        stats = simulator.run_campaign(12)
        assert stats.enrolled > 0
        assert stats.revoked > 0
        assert stats.desynchronized == 0
        assert len(simulator.devices) == len(simulator.registry)
        assert set(simulator.devices) == set(simulator.registry.device_ids())


class TestCrashRecovery:
    def test_in_memory_crash_restore(self):
        simulator = build_simulator(
            4, seed=69, faults=FaultModel(confirmation_drop=0.25),
        )
        stats = simulator.run_campaign(8, crash_after_round=4)
        assert stats.snapshots == 1
        assert stats.restores == 1
        assert stats.desynchronized == 0

    def test_on_disk_crash_restore(self, tmp_path):
        simulator = build_simulator(
            3, seed=70, faults=FaultModel(confirmation_drop=0.25),
        )
        stats = simulator.run_campaign(
            6, crash_after_round=3,
            snapshot_path=str(tmp_path / "campaign-snapshot"),
        )
        assert (tmp_path / "campaign-snapshot.npz").exists()
        assert stats.restores == 1
        assert stats.desynchronized == 0

    def test_restore_drops_in_flight_sessions_safely(self):
        simulator = build_simulator(2, seed=71)
        ids = sorted(simulator.devices)
        nonces = simulator.verifier.open_round(ids)
        responses = [simulator.devices[device_id].respond(nonces[device_id])
                     for device_id in ids]
        report = simulator.verifier.verify_round(responses, nonces)
        assert report.n_accepted == 2
        # Crash with both sessions pending: nothing was committed, so the
        # restored verifier re-authenticates everyone from the old CRP.
        simulator.restore(simulator.snapshot())
        assert not simulator.verifier._pending
        outcome = simulator.run_round()
        assert len(outcome.authenticated) == 2
        assert not simulator.desynchronized()


class TestAcceptanceCampaign:
    def test_flagship_campaign_zero_desync(self):
        # >= 50 rounds, >= 64 devices, 20% confirmation loss, replay +
        # tamper adversaries, one mid-campaign snapshot/restore.
        simulator = build_simulator(
            64, seed=72,
            faults=FaultModel(confirmation_drop=0.2, max_retries=4),
            adversaries=[ReplayAdversary(probability=0.3),
                         TamperAdversary(probability=0.02, factor=1.4)],
        )
        stats = simulator.run_campaign(50, crash_after_round=25)
        assert stats.rounds == 50
        assert stats.restores == 1
        assert stats.dropped_confirmations > 0
        assert stats.desynchronized == 0
        assert simulator.desynchronized() == []
        # The overwhelming majority of sessions complete despite the
        # hostile network.
        assert stats.authenticated >= 0.95 * 50 * 64
        assert stats.auths_per_sec > 0

    def test_malformed_body_fails_only_that_device_at_fleet_scale(self):
        from repro.crypto.mac import mac as compute_mac
        from repro.fleet.verifier import AuthResponse
        from repro.protocols.mutual_auth import _pad_bits

        registry, devices, verifier = provision_fleet(64, seed=73,
                                                      **FAST_PUF)
        victim, *honest = devices
        nonces = verifier.open_round([d.device_id for d in devices])
        body = b"firmware-bug: not length-prefixed"
        poison = AuthResponse(
            victim.device_id, body,
            compute_mac(body, _pad_bits(victim.current_response)),
        )
        messages = [poison] + [d.respond(nonces[d.device_id])
                               for d in honest]
        report = verifier.verify_round(messages, nonces)
        assert report.failure_kinds[victim.device_id] == \
            FailureKind.MALFORMED.value
        assert report.n_accepted == 63
        for device in honest:
            device.confirm(report.confirmations[device.device_id],
                           nonces[device.device_id])
            verifier.finalize(device.device_id)
        for device in devices:
            assert np.array_equal(
                device.current_response,
                registry.record(device.device_id).current_response,
            )
