"""Cross-backend campaign equality: memory vs sharded, bit for bit.

The acceptance gate of the storage refactor: a 64-device hostile
campaign (drops, replay + tamper adversaries, one mid-campaign
incremental snapshot + crash/restore) driven over a
``ShardedFileBackend`` with a deliberately tiny resident set must be
*bit-identical* to the same campaign over the in-memory reference —
same round transcripts, same nonce/session outcomes, same campaign
statistics, same final registry and device state.  The storage layer
changes where bytes live, never which bytes exist.

(Extends the ``tests/service/test_transcript_equality.py`` pattern one
layer down: there the facade is pinned against the legacy entry
points; here the out-of-core backend is pinned against the facade's
reference storage.)
"""

import numpy as np
import pytest

from repro.fleet import (
    Adversary,
    FaultModel,
    ReplayAdversary,
    TamperAdversary,
    photonic_device_factory,
)
from repro.service import AuthService, FleetConfig

FLEET = 64
SEED = 2026
N_ROUNDS = 12
CRASH_AFTER = 6
FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)
HOSTILE = dict(
    faults=FaultModel(confirmation_drop=0.2, response_drop=0.05,
                      max_retries=4),
    adversaries_factory=lambda: [ReplayAdversary(probability=0.3),
                                 TamperAdversary(probability=0.02,
                                                 factor=1.4)],
)


class TranscriptRecorder(Adversary):
    """A passive wiretap: records every in-flight message, mutates none."""

    name = "transcript-recorder"

    def __init__(self):
        self.frames = []

    def mutate(self, messages, captured, rng):
        self.frames.extend(
            (message.device_id, bytes(message.body), bytes(message.tag))
            for message in messages
        )
        return messages


def run_campaign(backend_name, tmp_path, n_spot_crps=0):
    config = FleetConfig(
        n_devices=FLEET, seed=SEED, n_spot_crps=n_spot_crps, puf=FAST_PUF,
        fault_model=HOSTILE["faults"], registry_backend=backend_name,
        **({"storage_root": str(tmp_path / backend_name),
            "resident_records": 8}
           if backend_name == "sharded" else {}),
    )
    service = AuthService.provision(config)
    recorder = TranscriptRecorder()
    simulator = service.simulator(
        adversaries=HOSTILE["adversaries_factory"]() + [recorder],
    )
    # One incremental snapshot + crash/restore in the middle of the
    # hostile campaign — on the sharded backend this exercises the
    # O(dirty) checkpoint, journal truncation, and generation-guarded
    # re-attach while rounds keep flowing on both sides of the crash.
    stats = simulator.run_campaign(N_ROUNDS, crash_after_round=CRASH_AFTER)
    return service, simulator, recorder, stats


@pytest.fixture(scope="module")
def campaigns(tmp_path_factory):
    root = tmp_path_factory.mktemp("backend-equality")
    return {name: run_campaign(name, root)
            for name in ("memory", "sharded")}


class TestHostileCampaignBackendEquality:
    def test_backends_actually_differ(self, campaigns):
        memory_service = campaigns["memory"][0]
        sharded_service = campaigns["sharded"][0]
        assert memory_service.registry.backend.name == "memory"
        sharded_backend = sharded_service.simulator().registry.backend
        assert sharded_backend.name == "sharded"
        # The tiny resident cap really forced out-of-core paging.
        assert sharded_backend.stats["evictions"] > 0
        assert sharded_backend.stats["checkpoints"] >= 1

    def test_round_transcripts_bit_identical(self, campaigns):
        memory_frames = campaigns["memory"][2].frames
        sharded_frames = campaigns["sharded"][2].frames
        assert memory_frames, "hostile campaign produced no traffic"
        assert memory_frames == sharded_frames  # bytes, in order

    def test_campaign_statistics_identical(self, campaigns):
        memory_stats = campaigns["memory"][3].to_json()
        sharded_stats = campaigns["sharded"][3].to_json()
        for volatile in ("elapsed_s", "auths_per_sec"):
            memory_stats.pop(volatile)
            sharded_stats.pop(volatile)
        assert memory_stats == sharded_stats
        assert campaigns["sharded"][3].desynchronized == 0
        assert campaigns["sharded"][3].restores == 1

    def test_final_fleet_state_bit_identical(self, campaigns):
        memory_sim = campaigns["memory"][1]
        sharded_sim = campaigns["sharded"][1]
        assert sorted(memory_sim.devices) == sorted(sharded_sim.devices)
        for device_id in sorted(memory_sim.devices):
            memory_record = memory_sim.registry.record(device_id)
            sharded_record = sharded_sim.registry.record(device_id)
            assert memory_record.sessions == sharded_record.sessions
            assert np.array_equal(memory_record.current_response,
                                  sharded_record.current_response)
            assert np.array_equal(
                memory_sim.devices[device_id].current_response,
                sharded_sim.devices[device_id].current_response,
            )
        assert memory_sim.registry.storage_bytes == \
            sharded_sim.registry.storage_bytes


class TestChurnAndSpotChecksAcrossBackends:
    """Enroll/revoke churn and spot-pool burns, same on both backends."""

    def run_churny(self, backend_name, tmp_path):
        config = FleetConfig(
            n_devices=16, seed=77, n_spot_crps=6, puf=FAST_PUF,
            registry_backend=backend_name,
            **({"storage_root": str(tmp_path / f"churn-{backend_name}"),
                "resident_records": 4}
               if backend_name == "sharded" else {}),
        )
        service = AuthService.provision(config)
        simulator = service.simulator(
            faults=FaultModel(confirmation_drop=0.1, enroll_prob=0.5,
                              revoke_prob=0.5, min_fleet_size=4,
                              max_retries=3),
            device_factory=photonic_device_factory(seed=77, **FAST_PUF),
        )
        stats = simulator.run_campaign(10, crash_after_round=5)
        # Post-restore, the *simulator's* verifier owns the live
        # registry (the service facade is a stale handle by design —
        # rebuild it around the hardware to resume serving).
        spot = simulator.verifier.spot_check(
            [simulator.devices[device_id]
             for device_id in sorted(simulator.devices)][:4], k=2)
        return simulator, stats, spot

    def test_churn_campaign_identical(self, tmp_path):
        memory_sim, memory_stats, memory_spot = self.run_churny(
            "memory", tmp_path)
        sharded_sim, sharded_stats, sharded_spot = self.run_churny(
            "sharded", tmp_path)
        assert memory_stats.enrolled == sharded_stats.enrolled > 0
        assert memory_stats.revoked == sharded_stats.revoked > 0
        memory_json, sharded_json = (memory_stats.to_json(),
                                     sharded_stats.to_json())
        for volatile in ("elapsed_s", "auths_per_sec"):
            memory_json.pop(volatile)
            sharded_json.pop(volatile)
        assert memory_json == sharded_json
        assert sorted(memory_sim.devices) == sorted(sharded_sim.devices)
        for device_id in sorted(memory_sim.devices):
            memory_record = memory_sim.registry.record(device_id)
            sharded_record = sharded_sim.registry.record(device_id)
            assert memory_record.sessions == sharded_record.sessions
            assert np.array_equal(memory_record.current_response,
                                  sharded_record.current_response)
            assert np.array_equal(memory_record.crp_used,
                                  sharded_record.crp_used)
        assert memory_spot.device_ids == sharded_spot.device_ids
        assert np.array_equal(memory_spot.fractional_hd,
                              sharded_spot.fractional_hd)
        assert np.array_equal(memory_spot.accepted, sharded_spot.accepted)
