"""Sharded fleet rounds vs the single-process stacked plane.

The acceptance bar of the shard layer is *bitwise-equal round
transcripts*: provisioning secrets, per-round message bytes,
confirmations, spot-check outcomes — a sharded fleet may differ from the
single-process plane only in wall clock.  Also covered: the pipelined
round scheduler's failure semantics (one shared duplicate set across
shard chunks), mixed attached/detached devices inside one round, worker
crash mid-campaign, and the micro-round coalescer.
"""

import numpy as np
import pytest

from repro.fleet import (
    FleetSimulator,
    RoundCoalescer,
    respond_round as respond_fleet,
    respond_round_staged as respond_fleet_staged,
)

from facade_bridge import provision_fleet

N_DEVICES = 10
CONFIG = dict(challenge_bits=32, n_stages=6, response_bits=16,
              n_spot_crps=8)
SEED = 77


@pytest.fixture(scope="module")
def plain_fleet():
    return provision_fleet(N_DEVICES, seed=SEED, stacked=True, **CONFIG)


@pytest.fixture()
def sharded_fleet():
    registry, devices, verifier = provision_fleet(
        N_DEVICES, seed=SEED, stacked=True, shard_workers=3, **CONFIG
    )
    yield registry, devices, verifier
    devices[0].plane.close_executor()


class TestShardedTranscripts:
    def test_executor_attached(self, sharded_fleet):
        __, devices, __ = sharded_fleet
        executor = devices[0].plane.executor
        assert executor is not None and executor.active
        assert executor.n_workers == 3  # ragged shards: 4/3/3 dies

    def test_enrollment_bitwise_equal(self, plain_fleet, sharded_fleet):
        registry1, devices1, __ = plain_fleet
        registry2, devices2, __ = sharded_fleet
        for device1, device2 in zip(devices1, devices2):
            assert np.array_equal(device1.current_response,
                                  device2.current_response)
            record1 = registry1.record(device1.device_id)
            record2 = registry2.record(device2.device_id)
            assert np.array_equal(record1.crp_challenges,
                                  record2.crp_challenges)
            assert np.array_equal(record1.crp_responses,
                                  record2.crp_responses)

    def test_round_transcripts_bitwise_equal(self, sharded_fleet):
        """Fresh plain fleet vs sharded fleet: identical byte streams."""
        __, devices1, verifier1 = provision_fleet(
            N_DEVICES, seed=SEED, stacked=True, **CONFIG
        )
        __, devices2, verifier2 = sharded_fleet
        for __ in range(3):
            nonces1 = verifier1.open_round(
                [device.device_id for device in devices1])
            nonces2 = verifier2.open_round(
                [device.device_id for device in devices2])
            assert nonces1 == nonces2
            messages1 = respond_fleet(devices1, nonces1)
            messages2 = respond_fleet(devices2, nonces2)
            for m1, m2 in zip(messages1, messages2):
                assert m1.device_id == m2.device_id
                assert m1.body == m2.body
                assert m1.tag == m2.tag
            report1 = verifier1.verify_round(messages1, nonces1)
            report2 = verifier2.verify_round(messages2, nonces2)
            assert report1.confirmations == report2.confirmations
            assert report1.failures == report2.failures
            for devices, verifier, nonces, report in (
                (devices1, verifier1, nonces1, report1),
                (devices2, verifier2, nonces2, report2),
            ):
                for device in devices:
                    device.confirm(report.confirmations[device.device_id],
                                   nonces[device.device_id])
                    verifier.finalize(device.device_id)

    def test_authenticate_fleet_pipeline_equal(self, sharded_fleet):
        __, devices1, verifier1 = provision_fleet(
            N_DEVICES, seed=SEED, stacked=True, **CONFIG
        )
        __, devices2, verifier2 = sharded_fleet
        for __ in range(2):
            report1 = verifier1.authenticate_fleet(devices1)
            report2 = verifier2.authenticate_fleet(devices2)
            assert report1.n_accepted == report2.n_accepted == N_DEVICES
            assert report1.confirmations == report2.confirmations

    def test_spot_check_equal(self, sharded_fleet):
        __, devices1, verifier1 = provision_fleet(
            N_DEVICES, seed=SEED, stacked=True, **CONFIG
        )
        __, devices2, verifier2 = sharded_fleet
        spot1 = verifier1.spot_check(devices1, k=4)
        spot2 = verifier2.spot_check(devices2, k=4)
        assert np.array_equal(spot1.fractional_hd, spot2.fractional_hd)
        assert np.array_equal(spot1.accepted, spot2.accepted)

    def test_mixed_attached_detached_round(self, sharded_fleet):
        """Half the fleet detached mid-round: transcripts still match."""
        __, devices1, verifier1 = provision_fleet(
            N_DEVICES, seed=SEED, stacked=True, **CONFIG
        )
        __, devices2, verifier2 = sharded_fleet
        detached = [1, 4, 8]
        for index in detached:
            devices1[index].detach_plane()
            devices2[index].detach_plane()
        report1 = verifier1.authenticate_fleet(devices1)
        report2 = verifier2.authenticate_fleet(devices2)
        assert report1.n_accepted == report2.n_accepted == N_DEVICES
        assert report1.confirmations == report2.confirmations

    def test_staged_chunks_reassemble_to_flat(self, sharded_fleet):
        __, devices, verifier = sharded_fleet
        nonces = verifier.open_round(
            [device.device_id for device in devices])
        chunks = list(respond_fleet_staged(devices, nonces))
        assert len(chunks) > 1  # sharded: one chunk per worker
        flat = [None] * N_DEVICES
        for positions, messages in chunks:
            for position, message in zip(positions, messages):
                flat[position] = message
        assert all(message is not None for message in flat)
        assert [m.device_id for m in flat] == [d.device_id for d in devices]
        for device in devices:  # leave no sessions pending
            device._pending = None

    def test_duplicate_device_rejected_across_chunks(self, sharded_fleet):
        """The pipelined path shares one duplicate set round-wide."""
        __, devices, verifier = sharded_fleet
        doubled = list(devices) + [devices[0]]
        report = verifier.authenticate_fleet(doubled)
        # The second message was rejected as duplicate-device; the
        # doubled device's own second confirm attempt then downgrades
        # its recorded kind to no-session — exactly the sequential
        # path's semantics.  The invariant: one device, one session.
        assert report.failure_kinds[devices[0].device_id] == "no-session"
        # Everyone else still authenticated.
        assert report.n_accepted == N_DEVICES - 1

    def test_worker_crash_mid_campaign_stays_synchronized(self,
                                                          sharded_fleet):
        __, devices1, verifier1 = provision_fleet(
            N_DEVICES, seed=SEED, stacked=True, **CONFIG
        )
        __, devices2, verifier2 = sharded_fleet
        executor = devices2[0].plane.executor
        report = verifier2.authenticate_fleet(devices2)
        assert report.n_accepted == N_DEVICES
        verifier1.authenticate_fleet(devices1)
        victim = executor._workers[0]
        victim.kill()
        victim.join()
        # Crash mid-campaign: the round completes inline, bit-identical.
        report1 = verifier1.authenticate_fleet(devices1)
        report2 = verifier2.authenticate_fleet(devices2)
        assert report2.n_accepted == N_DEVICES
        assert report1.confirmations == report2.confirmations
        assert not executor.active


class TestSimulatorShardedPath:
    def test_campaign_over_sharded_plane(self):
        registry, devices, verifier = provision_fleet(
            8, seed=5, stacked=True, **CONFIG
        )
        simulator = FleetSimulator(registry, devices, verifier, seed=5,
                                   shard_workers=2)
        try:
            assert devices[0].plane.executor is not None
            stats = simulator.run_campaign(3)
            assert stats.authenticated == 3 * 8
            assert stats.desynchronized == 0
        finally:
            simulator.close()
        assert devices[0].plane.executor is None

    def test_campaign_matches_single_process(self):
        outcomes = []
        for shard_workers in (None, 2):
            registry, devices, verifier = provision_fleet(
                6, seed=9, stacked=True, **CONFIG
            )
            simulator = FleetSimulator(registry, devices, verifier, seed=9,
                                       shard_workers=shard_workers)
            try:
                stats = simulator.run_campaign(2)
            finally:
                simulator.close()
            outcomes.append((
                stats.authenticated, stats.desynchronized,
                tuple(np.concatenate([device.current_response
                                      for device in devices])),
            ))
        assert outcomes[0] == outcomes[1]


class TestRoundCoalescer:
    @pytest.fixture()
    def clocked(self, sharded_fleet):
        __, devices, verifier = sharded_fleet
        now = [0.0]
        coalescer = RoundCoalescer(verifier, latency_budget_s=1.0,
                                   max_batch=4, clock=lambda: now[0])
        return devices, coalescer, now

    def test_holds_until_deadline(self, clocked):
        devices, coalescer, now = clocked
        ticket = coalescer.submit(devices[0])
        assert coalescer.pending_count == 1
        assert coalescer.poll() is None
        assert not ticket.done
        now[0] = 1.5
        report = coalescer.poll()
        assert report is not None and report.n_accepted == 1
        assert ticket.done and ticket.accepted
        assert coalescer.flushed_by_deadline == 1

    def test_full_micro_round_flushes_immediately(self, clocked):
        devices, coalescer, __ = clocked
        tickets = [coalescer.submit(device) for device in devices[:4]]
        assert coalescer.pending_count == 0
        assert all(t.done and t.accepted for t in tickets)
        assert coalescer.flushed_by_size == 1
        assert coalescer.micro_rounds == 1

    def test_duplicate_submission_flushes_first(self, clocked):
        devices, coalescer, __ = clocked
        first = coalescer.submit(devices[0])
        second = coalescer.submit(devices[0])
        assert first.done and first.accepted
        assert not second.done
        coalescer.flush()
        assert second.done and second.accepted

    def test_unknown_device_rejected_at_submit(self, clocked):
        from repro.fleet import FleetDevice
        from repro.protocols.mutual_auth import AuthenticationFailure
        devices, coalescer, __ = clocked
        stranger = FleetDevice("dev-stranger", devices[0].puf)
        ticket = coalescer.submit(devices[0])
        # A stray unenrolled request fails at the door, not mid-round.
        with pytest.raises(AuthenticationFailure):
            coalescer.submit(stranger)
        assert coalescer.pending_count == 1
        report = coalescer.flush()
        assert report.n_accepted == 1 and ticket.accepted

    def test_revoked_mid_coalesce_fails_only_that_ticket(self, clocked,
                                                         sharded_fleet):
        """Revocation between submit and flush rejects the victim only.

        Regression: the revoked device used to reach ``open_round``,
        which raised ``not-enrolled`` for the *whole* micro-round and
        settled every ticket as failed.  The flush must screen revoked
        devices out first so the survivors still authenticate.
        """
        registry, devices, verifier = sharded_fleet
        __, coalescer, __ = clocked
        survivor = coalescer.submit(devices[1])
        victim = coalescer.submit(devices[2])
        registry.revoke(devices[2].device_id)
        verifier.evict(devices[2].device_id)
        report = coalescer.flush()
        assert report is not None and report.n_accepted == 1
        assert survivor.done and survivor.accepted
        assert victim.done and not victim.accepted
        assert "revoked" in victim.failure
        assert victim.failure_kind == "not-enrolled"
        assert coalescer.pending_count == 0
        assert coalescer.micro_rounds == 1

    def test_whole_micro_round_revoked_is_noop_round(self, clocked,
                                                     sharded_fleet):
        registry, devices, verifier = sharded_fleet
        __, coalescer, __ = clocked
        ticket = coalescer.submit(devices[3])
        registry.revoke(devices[3].device_id)
        verifier.evict(devices[3].device_id)
        # Every pending device gone: no round runs at all.
        assert coalescer.flush() is None
        assert ticket.done and not ticket.accepted
        assert ticket.failure_kind == "not-enrolled"
        assert coalescer.micro_rounds == 0

    def test_flush_empty_is_noop(self, clocked):
        __, coalescer, __ = clocked
        assert coalescer.flush() is None
        assert coalescer.micro_rounds == 0

    def test_validation(self, sharded_fleet):
        __, __, verifier = sharded_fleet
        with pytest.raises(ValueError):
            RoundCoalescer(verifier, latency_budget_s=-1.0)
        with pytest.raises(ValueError):
            RoundCoalescer(verifier, max_batch=0)
