"""Tests for the photonic weak and strong PUFs — the paper's primitives."""

import numpy as np
import pytest

from repro.puf.base import PUFEnvironment
from repro.puf.composite import CompositePUF
from repro.puf.photonic_strong import PhotonicStrongPUF, photonic_strong_family
from repro.puf.photonic_weak import PhotonicWeakPUF, photonic_weak_family
from repro.puf.sram import SRAMPUF


@pytest.fixture(scope="module")
def weak_devices():
    return [PhotonicWeakPUF(n_rings=16, n_wavelengths=2, seed=1, die_index=i)
            for i in range(4)]


@pytest.fixture(scope="module")
def strong_pair():
    return (PhotonicStrongPUF(challenge_bits=32, response_bits=16, seed=2, die_index=0),
            PhotonicStrongPUF(challenge_bits=32, response_bits=16, seed=2, die_index=1))


@pytest.fixture(scope="module")
def challenges32():
    rng = np.random.default_rng(0)
    return rng.integers(0, 2, size=(30, 32), dtype=np.uint8)


class TestPhotonicWeak:
    def test_validation(self):
        with pytest.raises(ValueError):
            PhotonicWeakPUF(n_rings=3)
        with pytest.raises(ValueError):
            PhotonicWeakPUF(n_wavelengths=0)

    def test_address_count(self, weak_devices):
        puf = weak_devices[0]
        assert puf.n_addresses == (16 // 2) * 2

    def test_fingerprint_reproducible(self, weak_devices):
        puf = weak_devices[0]
        assert np.array_equal(puf.read_all(measurement=0), puf.read_all(measurement=0))

    def test_devices_differ(self, weak_devices):
        a = weak_devices[0].read_all(measurement=0)
        b = weak_devices[1].read_all(measurement=0)
        assert 0.1 < np.mean(a != b) < 0.9

    def test_intra_error_small(self, weak_devices):
        puf = weak_devices[0]
        ref = puf.read_all(measurement=0)
        errors = [np.mean(puf.read_all(measurement=m) != ref) for m in range(1, 5)]
        assert np.mean(errors) < 0.05

    def test_response_is_sign_of_margin(self, weak_devices):
        puf = weak_devices[0]
        for addr in range(4):
            challenge = puf.address_challenge(addr)
            margin = puf.margin(challenge, measurement=0)
            bit = puf.evaluate(challenge, measurement=0)[0]
            assert bit == (1 if margin > 0 else 0)

    def test_thermal_tracking_limits_temperature_damage(self):
        tracked = PhotonicWeakPUF(n_rings=16, seed=3, die_index=0,
                                  thermal_tracking=True)
        untracked = PhotonicWeakPUF(n_rings=16, seed=3, die_index=0,
                                    thermal_tracking=False)
        hot = PUFEnvironment(temperature_c=45.0)
        ref_t = tracked.read_all(measurement=0)
        ref_u = untracked.read_all(measurement=0)
        err_tracked = np.mean([np.mean(tracked.read_all(hot, measurement=m) != ref_t)
                               for m in range(1, 4)])
        err_untracked = np.mean([np.mean(untracked.read_all(hot, measurement=m) != ref_u)
                                 for m in range(1, 4)])
        assert err_tracked < err_untracked
        assert err_tracked < 0.15

    def test_noise_scale_zero_is_noiseless(self, weak_devices):
        puf = weak_devices[2]
        quiet = PUFEnvironment(noise_scale=0.0)
        a = puf.read_all(quiet, measurement=0)
        b = puf.read_all(quiet, measurement=99)
        assert np.array_equal(a, b)

    def test_family_helper(self):
        family = photonic_weak_family(3, seed=9, n_rings=8, n_wavelengths=1)
        assert family.n_devices == 3
        assert family.device(0).n_addresses == 4


class TestPhotonicStrong:
    def test_validation(self):
        with pytest.raises(ValueError):
            PhotonicStrongPUF(challenge_bits=4)
        with pytest.raises(ValueError):
            PhotonicStrongPUF(response_bits=0)
        with pytest.raises(ValueError):
            PhotonicStrongPUF(thermal_stabilization=1.5)

    def test_response_shape(self, strong_pair, challenges32):
        responses = strong_pair[0].evaluate_batch(challenges32, measurement=0)
        assert responses.shape == (30, 16)

    def test_reproducible(self, strong_pair, challenges32):
        a = strong_pair[0].evaluate_batch(challenges32, measurement=0)
        b = strong_pair[0].evaluate_batch(challenges32, measurement=0)
        assert np.array_equal(a, b)

    def test_inter_device_near_half(self, strong_pair, challenges32):
        a = strong_pair[0].evaluate_batch(challenges32, measurement=0)
        b = strong_pair[1].evaluate_batch(challenges32, measurement=0)
        assert 0.3 < np.mean(a != b) < 0.7

    def test_intra_device_small(self, strong_pair, challenges32):
        a = strong_pair[0].evaluate_batch(challenges32, measurement=0)
        b = strong_pair[0].evaluate_batch(challenges32, measurement=1)
        assert np.mean(a != b) < 0.12

    def test_challenge_sensitivity(self, strong_pair):
        # One flipped challenge bit must change many response bits
        # (avalanche through the scrambler + memory).
        puf = strong_pair[0]
        base = np.zeros(32, dtype=np.uint8)
        flipped = base.copy()
        flipped[10] = 1
        quiet = PUFEnvironment(noise_scale=0.0)
        r_base = puf.evaluate(base, quiet, measurement=0)
        r_flip = puf.evaluate(flipped, quiet, measurement=0)
        assert np.mean(r_base != r_flip) > 0.05

    def test_memory_makes_past_bits_matter(self):
        # Two challenges identical in the last slots but different earlier:
        # with ring memory the *energies* in the final slot differ (the
        # reservoir property), and across many such pairs some response
        # bits flip too.
        puf = PhotonicStrongPUF(challenge_bits=32, response_bits=7,
                                n_channels=8, seed=5, with_memory=True)
        quiet = PUFEnvironment(noise_scale=0.0)
        a = np.ones(32, dtype=np.uint8)
        b = a.copy()
        b[27] = 0  # differs a few slots before the readout window
        ea = puf.slot_energies(a, quiet, measurement=0)
        eb = puf.slot_energies(b, quiet, measurement=0)
        relative = np.abs(ea[:, -1] - eb[:, -1]).max() / ea[:, -1].max()
        assert relative > 0.01

        rng = np.random.default_rng(3)
        flips = 0
        for trial in range(20):
            base = rng.integers(0, 2, size=32, dtype=np.uint8)
            other = base.copy()
            other[20:28] ^= 1  # perturb history, keep the last 4 slots
            ra = puf.evaluate(base, quiet, measurement=0)
            rb = puf.evaluate(other, quiet, measurement=0)
            flips += int(np.sum(ra != rb))
        assert flips > 0

    def test_memoryless_ablation_forgets_past(self):
        # Without ring memory the final-slot energies cannot depend on
        # earlier challenge bits (once modulator edges settle).
        puf = PhotonicStrongPUF(challenge_bits=32, response_bits=7,
                                n_channels=8, seed=5, with_memory=False)
        quiet = PUFEnvironment(noise_scale=0.0)
        a = np.ones(32, dtype=np.uint8)
        b = a.copy()
        b[10] = 0  # far from the readout window
        ea = puf.slot_energies(a, quiet, measurement=0)
        eb = puf.slot_energies(b, quiet, measurement=0)
        relative = np.abs(ea[:, -1] - eb[:, -1]).max() / ea[:, -1].max()
        assert relative < 1e-6

    def test_scalar_batch_consistency(self, strong_pair, challenges32):
        puf = strong_pair[0]
        quiet = PUFEnvironment(noise_scale=0.0)
        batch = puf.evaluate_batch(challenges32[:5], quiet, measurement=0)
        scalar = np.vstack([puf.evaluate(c, quiet, measurement=0)
                            for c in challenges32[:5]])
        assert np.array_equal(batch, scalar)

    def test_timing_claims(self, strong_pair):
        puf = strong_pair[0]
        assert puf.throughput_bits_per_s() == pytest.approx(25e9)
        assert puf.response_lifetime_s() < 100e-9  # paper Sec. IV claim
        assert puf.interrogation_time_s() == pytest.approx(
            (32 + puf.guard_slots) / 25e9
        )

    def test_family_helper(self):
        family = photonic_strong_family(2, seed=11, challenge_bits=16,
                                        response_bits=8)
        assert family.device(1).die_index == 1


class TestComposite:
    def test_binding_detects_chip_swap(self, challenges32):
        pic0 = PhotonicStrongPUF(challenge_bits=32, response_bits=16, seed=7, die_index=0)
        pic1 = PhotonicStrongPUF(challenge_bits=32, response_bits=16, seed=7, die_index=1)
        asic0 = SRAMPUF(n_cells=256, seed=8, die_index=0)
        asic1 = SRAMPUF(n_cells=256, seed=8, die_index=1)
        genuine = CompositePUF(pic0, asic0)
        swap_pic = CompositePUF(pic1, asic0)
        swap_asic = CompositePUF(pic0, asic1)
        ref = genuine.evaluate_batch(challenges32[:10], measurement=0)
        assert 0.2 < np.mean(ref != swap_pic.evaluate_batch(challenges32[:10], measurement=0))
        assert 0.2 < np.mean(ref != swap_asic.evaluate_batch(challenges32[:10], measurement=0))

    def test_composite_stable(self, challenges32):
        pic = PhotonicStrongPUF(challenge_bits=32, response_bits=16, seed=9, die_index=0)
        asic = SRAMPUF(n_cells=256, seed=10, die_index=0)
        a = CompositePUF(pic, asic)
        b = CompositePUF(pic, asic)  # re-assembled, same chips
        r0 = a.evaluate_batch(challenges32[:8], measurement=0)
        r1 = b.evaluate_batch(challenges32[:8], measurement=0)
        assert np.array_equal(r0, r1)

    def test_scalar_batch_consistency(self, challenges32):
        pic = PhotonicStrongPUF(challenge_bits=32, response_bits=16, seed=12, die_index=0)
        asic = SRAMPUF(n_cells=256, seed=13)
        comp = CompositePUF(pic, asic)
        quiet = PUFEnvironment(noise_scale=0.0)
        batch = comp.evaluate_batch(challenges32[:4], quiet, measurement=0)
        scalar = np.vstack([comp.evaluate(c, quiet, measurement=0)
                            for c in challenges32[:4]])
        assert np.array_equal(batch, scalar)
