"""Tests for the electronic PUF baselines: SRAM, RO, arbiter, XOR-arbiter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.puf.arbiter import ArbiterPUF, XORArbiterPUF, parity_features
from repro.puf.base import PUFEnvironment
from repro.puf.ro import ROPUF
from repro.puf.sram import SRAMPUF


class TestSRAM:
    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            SRAMPUF(n_cells=100)

    def test_fingerprint_stable_same_measurement(self):
        puf = SRAMPUF(n_cells=256, seed=1)
        assert np.array_equal(puf.power_up(measurement=0), puf.power_up(measurement=0))

    def test_uniformity_near_half(self):
        bits = SRAMPUF(n_cells=4096, seed=2).power_up(measurement=0)
        assert 0.45 < bits.mean() < 0.55

    def test_intra_device_error_small(self):
        puf = SRAMPUF(n_cells=4096, seed=3)
        ref = puf.power_up(measurement=0)
        errors = [np.mean(puf.power_up(measurement=m) != ref) for m in range(1, 5)]
        assert 0.0 < np.mean(errors) < 0.10

    def test_inter_device_distance_near_half(self):
        a = SRAMPUF(n_cells=4096, seed=4, die_index=0).power_up(measurement=0)
        b = SRAMPUF(n_cells=4096, seed=4, die_index=1).power_up(measurement=0)
        assert 0.45 < np.mean(a != b) < 0.55

    def test_temperature_increases_noise(self):
        puf = SRAMPUF(n_cells=4096, seed=5)
        ref = puf.power_up(measurement=0)
        cold = np.mean([np.mean(puf.power_up(measurement=m) != ref)
                        for m in range(1, 6)])
        hot_env = PUFEnvironment(temperature_c=85.0)
        hot = np.mean([np.mean(puf.power_up(hot_env, measurement=m + 10) != ref)
                       for m in range(1, 6)])
        assert hot > cold

    def test_aging_flips_bits(self):
        puf = SRAMPUF(n_cells=4096, seed=6)
        fresh = puf.power_up(measurement=0)
        aged_env = PUFEnvironment(age_hours=50_000.0, noise_scale=0.0)
        aged = puf.power_up(aged_env, measurement=0)
        flips = np.mean(fresh != aged)
        assert 0.0 < flips < 0.2

    def test_single_cell_evaluate_matches_class_contract(self):
        puf = SRAMPUF(n_cells=256, seed=7)
        response = puf.evaluate(puf.address_challenge(5), measurement=0)
        assert response.size == 1
        assert response[0] in (0, 1)

    def test_remanence_short_off_keeps_data(self):
        puf = SRAMPUF(n_cells=1024, seed=8)
        written = np.ones(1024, dtype=np.uint8)  # attacker-written pattern
        read = puf.remanence_read(written, power_off_seconds=0.001, measurement=0)
        assert np.mean(read == written) > 0.95

    def test_remanence_long_off_converges_to_powerup(self):
        puf = SRAMPUF(n_cells=1024, seed=8)
        written = np.ones(1024, dtype=np.uint8)
        read = puf.remanence_read(written, power_off_seconds=10.0, measurement=0)
        fingerprint = puf.power_up(measurement=0)
        assert np.mean(read == fingerprint) > 0.95

    def test_remanence_requires_full_array(self):
        puf = SRAMPUF(n_cells=1024, seed=8)
        with pytest.raises(ValueError):
            puf.remanence_read(np.ones(10, dtype=np.uint8), 0.1)


class TestRO:
    def test_pair_count(self):
        puf = ROPUF(n_ros=256, seed=1)
        assert puf.n_addresses == 128

    def test_frequencies_positive(self):
        freqs = ROPUF(n_ros=64, seed=2).frequencies(measurement=0)
        assert (freqs > 0).all()

    def test_response_is_sign_of_margin(self):
        puf = ROPUF(n_ros=64, seed=3)
        for addr in range(8):
            challenge = puf.address_challenge(addr)
            margin = puf.margin(challenge, measurement=0)
            bit = puf.evaluate(challenge, measurement=0)[0]
            assert bit == (1 if margin > 0 else 0)

    def test_uniformity(self):
        bits = ROPUF(n_ros=2048, seed=4).read_all(measurement=0)
        assert 0.4 < bits.mean() < 0.6

    def test_intra_error_small_but_nonzero(self):
        puf = ROPUF(n_ros=2048, seed=5)
        ref = puf.read_all(measurement=0)
        errors = [np.mean(puf.read_all(measurement=m) != ref) for m in range(1, 8)]
        assert 0.0 < np.mean(errors) < 0.05

    def test_temperature_common_mode_mostly_cancels(self):
        puf = ROPUF(n_ros=2048, seed=6)
        ref = puf.read_all(measurement=0)
        hot = puf.read_all(PUFEnvironment(temperature_c=85.0), measurement=1)
        assert np.mean(ref != hot) < 0.2

    def test_all_margins_match_pairwise(self):
        puf = ROPUF(n_ros=64, seed=7)
        margins = puf.all_margins(measurement=0)
        assert margins.shape == (32,)
        assert margins[0] == pytest.approx(puf.counter_difference(0, measurement=0))

    def test_voltage_shifts_frequencies(self):
        puf = ROPUF(n_ros=64, seed=8)
        nominal = puf.frequencies(measurement=0).mean()
        high_v = puf.frequencies(PUFEnvironment(supply_v=1.3), measurement=0).mean()
        assert high_v > nominal


class TestParityFeatures:
    def test_shape(self):
        phi = parity_features(np.zeros((5, 16), dtype=np.uint8))
        assert phi.shape == (5, 17)

    def test_all_zero_challenge(self):
        phi = parity_features(np.zeros((1, 4), dtype=np.uint8))[0]
        assert phi.tolist() == [1, 1, 1, 1, 1]

    def test_single_one_flips_prefix(self):
        challenge = np.array([[0, 1, 0, 0]], dtype=np.uint8)
        phi = parity_features(challenge)[0]
        # phi_i = prod_{j>=i}(1-2c_j): positions 0..1 see the -1.
        assert phi.tolist() == [-1, -1, 1, 1, 1]

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=32))
    @settings(max_examples=30)
    def test_values_are_pm_one(self, bits):
        phi = parity_features(np.array([bits], dtype=np.uint8))[0]
        assert set(np.unique(phi[:-1])) <= {-1.0, 1.0}
        assert phi[-1] == 1.0


class TestArbiter:
    def test_linear_model_consistency(self):
        # Noise-free response must equal sign(w . phi(c)).
        puf = ArbiterPUF(n_stages=32, seed=1, sigma_noise=0.0)
        rng = np.random.default_rng(0)
        challenges = rng.integers(0, 2, size=(50, 32), dtype=np.uint8)
        responses = puf.evaluate_batch(challenges, measurement=0)
        predicted = (parity_features(challenges) @ puf.weights > 0).astype(np.uint8)
        assert np.array_equal(responses, predicted)

    def test_batch_matches_scalar_statistics(self):
        puf = ArbiterPUF(n_stages=32, seed=2, sigma_noise=0.0)
        rng = np.random.default_rng(1)
        challenges = rng.integers(0, 2, size=(20, 32), dtype=np.uint8)
        batch = puf.evaluate_batch(challenges, measurement=0)
        scalar = np.array([puf.evaluate(c, measurement=0)[0] for c in challenges])
        assert np.array_equal(batch, scalar)

    def test_uniformity(self):
        puf = ArbiterPUF(n_stages=64, seed=3)
        rng = np.random.default_rng(2)
        challenges = rng.integers(0, 2, size=(4000, 64), dtype=np.uint8)
        assert 0.4 < puf.evaluate_batch(challenges, measurement=0).mean() < 0.6

    def test_inter_device(self):
        rng = np.random.default_rng(3)
        challenges = rng.integers(0, 2, size=(2000, 64), dtype=np.uint8)
        a = ArbiterPUF(64, seed=4, die_index=0).evaluate_batch(challenges, measurement=0)
        b = ArbiterPUF(64, seed=4, die_index=1).evaluate_batch(challenges, measurement=0)
        assert 0.4 < np.mean(a != b) < 0.6

    def test_noise_flips_near_threshold_bits(self):
        puf = ArbiterPUF(n_stages=64, seed=5, sigma_noise=0.05)
        rng = np.random.default_rng(4)
        challenges = rng.integers(0, 2, size=(3000, 64), dtype=np.uint8)
        r0 = puf.evaluate_batch(challenges, measurement=0)
        r1 = puf.evaluate_batch(challenges, measurement=1)
        error = np.mean(r0 != r1)
        assert 0.0 < error < 0.1

    def test_needs_two_stages(self):
        with pytest.raises(ValueError):
            ArbiterPUF(n_stages=1)


class TestXORArbiter:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            XORArbiterPUF(k=0)

    def test_xor_of_chains(self):
        puf = XORArbiterPUF(n_stages=16, k=3, seed=6, sigma_noise=0.0)
        challenge = np.ones(16, dtype=np.uint8)
        expected = 0
        for chain in puf._chains:
            expected ^= int(chain.evaluate(challenge, measurement=0)[0])
        assert puf.evaluate(challenge, measurement=0)[0] == expected

    def test_batch_matches_scalar(self):
        puf = XORArbiterPUF(n_stages=16, k=2, seed=7, sigma_noise=0.0)
        rng = np.random.default_rng(5)
        challenges = rng.integers(0, 2, size=(10, 16), dtype=np.uint8)
        batch = puf.evaluate_batch(challenges, measurement=0)
        scalar = np.array([puf.evaluate(c, measurement=0)[0] for c in challenges])
        assert np.array_equal(batch, scalar)

    def test_uniformity(self):
        puf = XORArbiterPUF(n_stages=64, k=4, seed=8)
        rng = np.random.default_rng(6)
        challenges = rng.integers(0, 2, size=(3000, 64), dtype=np.uint8)
        assert 0.4 < puf.evaluate_batch(challenges, measurement=0).mean() < 0.6
