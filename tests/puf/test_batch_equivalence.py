"""Scalar <-> batched <-> compiled equivalence at the PUF layer."""

import numpy as np
import pytest

from repro.puf.base import PUFEnvironment
from repro.puf.photonic_strong import PhotonicStrongPUF, photonic_strong_family

RTOL = 1e-9


@pytest.fixture(scope="module")
def puf():
    # Noise-free device: propagation numerics are the only difference
    # between the loop path and the compiled path.
    return PhotonicStrongPUF(challenge_bits=32, n_stages=6, response_bits=16,
                             seed=21, die_index=1, noise_mw=0.0)


@pytest.fixture(scope="module")
def challenges():
    rng = np.random.default_rng(9)
    return rng.integers(0, 2, size=(24, 32), dtype=np.uint8)


class TestEnergyEquivalence:
    def test_scalar_matches_batch_rows(self, puf, challenges):
        batch = puf.slot_energies_batch(challenges, measurement=0)
        for row in range(4):
            scalar = puf.slot_energies(challenges[row], measurement=0)
            assert np.allclose(scalar, batch[row], rtol=RTOL, atol=1e-15)

    def test_compiled_matches_loop_path(self, puf, challenges):
        loop = puf.slot_energies_batch(challenges, measurement=0, compiled=False)
        fast = puf.slot_energies_batch(challenges, measurement=0, compiled=True)
        assert np.allclose(fast, loop, rtol=RTOL, atol=1e-15)

    def test_equivalence_holds_with_noise(self, challenges):
        # Same measurement index and same batch shape draw identical noise,
        # so the comparison still isolates propagation numerics.
        noisy = PhotonicStrongPUF(challenge_bits=32, n_stages=6,
                                  response_bits=16, seed=21, die_index=1)
        loop = noisy.slot_energies_batch(challenges, measurement=3,
                                         compiled=False)
        fast = noisy.slot_energies_batch(challenges, measurement=3,
                                         compiled=True)
        assert np.allclose(fast, loop, rtol=RTOL, atol=1e-15)

    def test_equivalence_across_environments(self, puf, challenges):
        for temperature in (25.0, 31.0, 45.0):
            env = PUFEnvironment(temperature_c=temperature)
            loop = puf.slot_energies_batch(challenges[:6], env, measurement=0,
                                           compiled=False)
            fast = puf.slot_energies_batch(challenges[:6], env, measurement=0,
                                           compiled=True)
            assert np.allclose(fast, loop, rtol=RTOL, atol=1e-15)


class TestResponseEquivalence:
    def test_responses_bitwise_equal(self, puf, challenges):
        loop = puf.evaluate_batch(challenges, measurement=0, compiled=False)
        fast = puf.evaluate_batch(challenges, measurement=0, compiled=True)
        assert np.array_equal(loop, fast)

    def test_scalar_evaluate_matches_batch(self, puf, challenges):
        batch = puf.evaluate_batch(challenges, measurement=0)
        for row in range(4):
            scalar = puf.evaluate(challenges[row], measurement=0)
            assert np.array_equal(scalar, batch[row])


class TestEngineCache:
    def test_cache_keyed_on_environment(self, challenges):
        puf = PhotonicStrongPUF(challenge_bits=32, n_stages=4,
                                response_bits=8, seed=4)
        assert puf.engine_cache_size() == 0
        puf.evaluate_batch(challenges[:2], measurement=0)
        puf.evaluate_batch(challenges[:2], measurement=1)
        assert puf.engine_cache_size() == 1  # nominal conditions reuse
        puf.evaluate_batch(challenges[:2],
                           PUFEnvironment(temperature_c=60.0), measurement=0)
        assert puf.engine_cache_size() == 2

    def test_noise_scale_shares_compilation(self, challenges):
        puf = PhotonicStrongPUF(challenge_bits=32, n_stages=4,
                                response_bits=8, seed=4)
        puf.evaluate_batch(challenges[:2], measurement=0)
        puf.evaluate_batch(challenges[:2],
                           PUFEnvironment(noise_scale=5.0), measurement=0)
        assert puf.engine_cache_size() == 1


class TestFamilyBatchedPath:
    def test_response_matrix_batched_matches_legacy(self, challenges):
        family = photonic_strong_family(
            3, seed=13, challenge_bits=32, n_stages=4, response_bits=8,
            noise_mw=0.0,
        )
        legacy = family.response_matrix(challenges[:5], batched=False)
        batched = family.response_matrix(challenges[:5], batched=True)
        assert batched.shape == legacy.shape == (3, 5 * 8)
        assert np.array_equal(batched, legacy)
