"""Tests for the photonic TRNG: entropy quality + health-test coverage."""

import numpy as np
import pytest

from repro.metrics import pass_fraction, run_suite
from repro.puf.trng import (
    BiasedSource,
    EntropyFailure,
    HealthTestState,
    PhotonicTRNG,
    StuckSource,
)


class TestRawSource:
    def test_raw_bits_binary(self):
        trng = PhotonicTRNG(seed=1)
        raw = trng.raw_bits(2000)
        assert set(np.unique(raw)) <= {0, 1}

    def test_raw_bits_roughly_balanced(self):
        raw = PhotonicTRNG(seed=2).raw_bits(20_000)
        assert 0.35 < raw.mean() < 0.65

    def test_streams_independent(self):
        a = PhotonicTRNG(seed=3, stream_id=0).raw_bits(1000)
        b = PhotonicTRNG(seed=3, stream_id=1).raw_bits(1000)
        assert not np.array_equal(a, b)

    def test_consecutive_draws_fresh(self):
        trng = PhotonicTRNG(seed=4)
        assert not np.array_equal(trng.raw_bits(1000), trng.raw_bits(1000))


class TestConditionedOutput:
    def test_length(self):
        assert len(PhotonicTRNG(seed=5).random_bytes(48)) == 48

    def test_bits_helper(self):
        assert PhotonicTRNG(seed=6).random_bits(37).size == 37

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PhotonicTRNG(seed=7).random_bytes(-1)

    def test_passes_nist_battery(self):
        trng = PhotonicTRNG(seed=8)
        stream = trng.random_bits(8192)
        results = run_suite(stream)
        assert pass_fraction(results) >= 7 / 8

    def test_outputs_differ_between_instances(self):
        a = PhotonicTRNG(seed=9, stream_id=0).random_bytes(32)
        b = PhotonicTRNG(seed=9, stream_id=1).random_bytes(32)
        assert a != b


class TestHealthTests:
    def test_stuck_source_caught(self):
        trng = StuckSource(seed=10)
        with pytest.raises(EntropyFailure):
            trng.random_bytes(16)
        assert trng.health.failures == 1

    def test_biased_source_caught(self):
        trng = BiasedSource(bias=0.97, seed=11)
        with pytest.raises(EntropyFailure):
            # One conditioning block is enough raw data for the APT window.
            trng.random_bytes(16)

    def test_healthy_source_never_trips(self):
        trng = PhotonicTRNG(seed=12)
        for __ in range(10):
            trng.random_bytes(32)
        assert trng.health.failures == 0

    def test_repetition_count_unit(self):
        health = HealthTestState(rct_cutoff=5)
        with pytest.raises(EntropyFailure):
            health.update(np.ones(10, dtype=np.uint8))

    def test_adaptive_proportion_unit(self):
        health = HealthTestState(window=64, apt_cutoff=50, rct_cutoff=1000)
        biased = np.ones(64, dtype=np.uint8)
        biased[::9] = 0  # break runs, keep heavy bias
        with pytest.raises(EntropyFailure):
            health.update(biased)

    def test_balanced_stream_passes_unit(self):
        health = HealthTestState(window=64, apt_cutoff=50)
        health.update(np.tile([0, 1, 1, 0], 64).astype(np.uint8))
        assert health.failures == 0
