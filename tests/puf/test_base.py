"""Tests for the PUF base abstractions."""

import numpy as np
import pytest

from repro.puf.base import (
    CRP,
    NOMINAL_ENV,
    PUF,
    PUFEnvironment,
    PUFFamily,
    StrongPUF,
    WeakPUF,
)


class ToyPUF(StrongPUF):
    """XOR-parity toy PUF keyed by a device index (for base-class tests)."""

    def __init__(self, die_index=0):
        super().__init__()
        self.challenge_bits = 8
        self.response_bits = 2
        self.die_index = die_index

    def _evaluate(self, challenge, env, measurement):
        parity = int(challenge.sum() + self.die_index) % 2
        return np.array([parity, 1 - parity], dtype=np.uint8)


class ToyWeakPUF(WeakPUF):
    def __init__(self):
        super().__init__()
        self.challenge_bits = 3
        self.response_bits = 1

    @property
    def n_addresses(self):
        return 8

    def _evaluate(self, challenge, env, measurement):
        return np.array([int(challenge.sum()) % 2], dtype=np.uint8)


class TestEnvironment:
    def test_defaults(self):
        assert NOMINAL_ENV.temperature_c == 25.0
        assert NOMINAL_ENV.noise_scale == 1.0

    def test_with_helpers(self):
        env = PUFEnvironment().with_temperature(50.0).with_noise_scale(2.0)
        assert env.temperature_c == 50.0
        assert env.noise_scale == 2.0
        env2 = env.with_age(100.0)
        assert env2.age_hours == 100.0
        assert env.age_hours == 0.0  # immutable


class TestPUFBase:
    def test_challenge_length_checked(self):
        with pytest.raises(ValueError):
            ToyPUF().evaluate(np.zeros(4, dtype=np.uint8))

    def test_measurement_counter_advances(self):
        puf = ToyPUF()
        puf.evaluate(np.zeros(8, dtype=np.uint8))
        assert puf._measurement_counter == 1

    def test_crp_wrapper(self):
        puf = ToyPUF()
        crp = puf.crp(np.ones(8, dtype=np.uint8))
        assert isinstance(crp, CRP)
        assert crp.challenge.size == 8
        assert crp.response.size == 2

    def test_random_challenge_length(self):
        puf = ToyPUF()
        challenge = puf.random_challenge(np.random.default_rng(0))
        assert challenge.size == 8

    def test_challenge_space_size(self):
        assert ToyPUF().challenge_space_size() == 256


class TestWeakPUF:
    def test_address_round_trip(self):
        puf = ToyWeakPUF()
        for addr in (0, 3, 7):
            challenge = puf.address_challenge(addr)
            assert puf.address_from_challenge(challenge) == addr

    def test_address_out_of_range(self):
        with pytest.raises(ValueError):
            ToyWeakPUF().address_challenge(8)

    def test_read_all_length(self):
        assert ToyWeakPUF().read_all().size == 8


class TestPUFFamily:
    def test_device_creation(self):
        family = PUFFamily(lambda die: ToyPUF(die), 4)
        assert family.device(0).die_index == 0
        assert family.device(3).die_index == 3

    def test_bad_index(self):
        family = PUFFamily(lambda die: ToyPUF(die), 2)
        with pytest.raises(ValueError):
            family.device(2)

    def test_needs_devices(self):
        with pytest.raises(ValueError):
            PUFFamily(lambda die: ToyPUF(die), 0)

    def test_response_matrix_shape(self):
        family = PUFFamily(lambda die: ToyPUF(die), 3)
        challenges = [np.zeros(8, dtype=np.uint8), np.ones(8, dtype=np.uint8)]
        matrix = family.response_matrix(challenges)
        assert matrix.shape == (3, 4)  # 3 devices x (2 challenges x 2 bits)


class TestDefaultEvaluateBatch:
    """Every PUF has evaluate_batch; the baseline loops _evaluate rows."""

    def test_rows_match_per_challenge_evaluation(self):
        puf = ToyPUF(die_index=1)
        rng = np.random.default_rng(0)
        challenges = rng.integers(0, 2, size=(5, 8), dtype=np.uint8)
        batch = puf.evaluate_batch(challenges, measurement=0)
        assert batch.shape == (5, 2)
        for row, challenge in enumerate(challenges):
            assert np.array_equal(batch[row],
                                  puf.evaluate(challenge, measurement=0))

    def test_fresh_measurement_advances_counter_once(self):
        puf = ToyPUF()
        challenges = np.zeros((3, 8), dtype=np.uint8)
        before = puf._measurement_counter
        puf.evaluate_batch(challenges)
        assert puf._measurement_counter == before + 1

    def test_challenge_width_checked(self):
        with pytest.raises(ValueError):
            ToyPUF().evaluate_batch(np.zeros((2, 7), dtype=np.uint8))

    def test_weak_puf_also_batches(self):
        puf = ToyWeakPUF()
        challenges = np.stack([puf.address_challenge(a) for a in range(4)])
        batch = puf.evaluate_batch(challenges, measurement=0)
        assert batch.shape == (4, 1)
