"""AuthService verbs, declarative configs, policies, persistence."""

import numpy as np
import pytest

from repro.fleet import FaultModel, FleetDevice, FleetSimulator
from repro.protocols.mutual_auth import AuthenticationFailure, FailureKind
from repro.puf.photonic_strong import PhotonicStrongPUF
from repro.service import (
    AuditLogPolicy,
    AuthService,
    EngineConfig,
    FleetConfig,
    RateLimitPolicy,
    RetryPolicy,
    decode_message,
)

FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)


def build(n=3, seed=5, policies=(), clock=None, **overrides):
    config = FleetConfig(n_devices=n, seed=seed, puf=FAST_PUF, **overrides)
    kwargs = {"policies": policies}
    if clock is not None:
        kwargs["clock"] = clock
    return AuthService.provision(config, **kwargs)


class TestConfigs:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(n_devices=0)
        with pytest.raises(ValueError):
            FleetConfig(n_devices=1, n_spot_crps=-1)
        with pytest.raises(ValueError):
            FleetConfig(n_devices=1, max_batch=0)
        with pytest.raises(ValueError):
            FleetConfig(n_devices=1, latency_budget_s=-0.1)
        with pytest.raises(ValueError):
            FleetConfig(n_devices=1, clock_tolerance=1.0)
        with pytest.raises(ValueError):
            EngineConfig(shard_workers=0)
        with pytest.raises(ValueError):
            EngineConfig(stacked=False, shard_workers=2)
        with pytest.raises(TypeError):
            FleetConfig(n_devices=1, engine="stacked")
        with pytest.raises(TypeError):
            FleetConfig(n_devices=1, fault_model={"request_drop": 0.1})

    def test_state_round_trip(self):
        config = FleetConfig(
            n_devices=7, seed=9, n_spot_crps=16, clock_tolerance=0.04,
            engine=EngineConfig(stacked=True, shard_workers=2),
            latency_budget_s=0.25, max_batch=32,
            fault_model=FaultModel(confirmation_drop=0.2, max_retries=4),
            snapshot_path="/tmp/svc", puf=dict(FAST_PUF),
        )
        restored = FleetConfig.from_state(config.to_state())
        assert restored == config
        # to_state must be JSON-serializable end to end.
        import json
        json.dumps(config.to_state())

    def test_state_rejects_foreign_payloads(self):
        with pytest.raises(ValueError):
            FleetConfig.from_state({"format": "something-else"})
        state = FleetConfig(n_devices=1).to_state()
        state["version"] = 99
        with pytest.raises(ValueError):
            FleetConfig.from_state(state)

    def test_config_copies_puf_kwargs(self):
        knobs = dict(FAST_PUF)
        config = FleetConfig(n_devices=1, puf=knobs)
        knobs["challenge_bits"] = 9999
        assert config.puf["challenge_bits"] == FAST_PUF["challenge_bits"]

    def test_with_engine(self):
        config = FleetConfig(n_devices=2)
        sharded = config.with_engine(shard_workers=2)
        assert sharded.engine.shard_workers == 2
        assert config.engine.shard_workers is None


class TestVerbs:
    def test_membership_and_batch(self):
        service = build(n=4)
        assert len(service) == 4
        assert "dev-000000" in service
        report = service.authenticate_batch()
        assert report.n_accepted == 4
        for device in service.device_list:
            record = service.registry.record(device.device_id)
            assert record.sessions == 1
            assert np.array_equal(device.current_response,
                                  record.current_response)

    def test_single_authenticate_by_id_and_object(self):
        service = build(n=2)
        outcome = service.authenticate("dev-000001")
        assert outcome.accepted and outcome.attempts == 1
        outcome = service.authenticate(service.device("dev-000000"))
        assert outcome.accepted

    def test_enroll_and_revoke(self):
        service = build(n=2, seed=21)
        newcomer = FleetDevice(
            "dev-late", PhotonicStrongPUF(seed=21, die_index=50, **FAST_PUF))
        service.enroll(newcomer)
        assert "dev-late" in service and len(service) == 3
        assert service.authenticate("dev-late").accepted
        service.revoke("dev-late")
        assert "dev-late" not in service
        with pytest.raises(AuthenticationFailure):
            service.registry.record("dev-late")
        # Verifier state evicted too: a fresh round simply excludes it.
        assert service.authenticate_batch().n_accepted == 2

    def test_spot_check(self):
        service = build(n=3, n_spot_crps=12)
        report = service.spot_check(k=4)
        assert report.n_accepted == 3

    def test_staged_submit_flush(self):
        now = [0.0]
        service = build(n=3, clock=lambda: now[0], latency_budget_s=1.0)
        tickets = [service.submit(d) for d in service.device_list[:2]]
        assert service.poll() is None
        assert not tickets[0].done
        now[0] = 2.0
        report = service.poll()
        assert report is not None and report.n_accepted == 2
        assert all(t.done and t.accepted for t in tickets)

    def test_revoke_with_pending_ticket_settles_only_that_ticket(self):
        # The facade-level view of the coalescer regression: revocation
        # between submit and flush must not poison the micro-round.
        service = build(n=3, latency_budget_s=10.0)
        survivor = service.submit("dev-000000")
        victim = service.submit("dev-000001")
        service.revoke("dev-000001")
        report = service.flush()
        assert report is not None and report.n_accepted == 1
        assert survivor.accepted
        assert victim.done and not victim.accepted
        assert victim.failure_kind == FailureKind.NOT_ENROLLED.value

    def test_simulator_is_just_another_client(self):
        service = build(n=4, seed=31,
                        fault_model=FaultModel(confirmation_drop=0.2,
                                               max_retries=4))
        simulator = service.simulator()
        assert isinstance(simulator, FleetSimulator)
        assert simulator.registry is service.registry
        assert simulator.verifier is service.verifier
        stats = simulator.run_campaign(4)
        assert stats.desynchronized == 0
        # Campaign outcomes ARE service outcomes (shared registry).
        assert service.registry.record("dev-000000").sessions > 0


class TestPolicies:
    def test_rate_limit_denies_before_the_verifier(self):
        now = [0.0]
        limiter = RateLimitPolicy(max_requests=2, window_s=10.0,
                                  clock=lambda: now[0])
        service = build(n=1, policies=[limiter])
        device = service.device_list[0]
        assert service.authenticate(device).accepted
        assert service.authenticate(device).accepted
        denied = service.authenticate(device)
        assert not denied.accepted
        assert denied.failure_kind == FailureKind.RATE_LIMITED.value
        # No nonce was burned for the denied request.
        sessions = service.registry.record(device.device_id).sessions
        assert sessions == 2
        now[0] = 11.0  # window expired: admitted again
        assert service.authenticate(device).accepted

    def test_rate_limited_submit_settles_ticket_immediately(self):
        limiter = RateLimitPolicy(max_requests=1, window_s=60.0,
                                  clock=lambda: 0.0)
        service = build(n=1, policies=[limiter])
        device = service.device_list[0]
        first = service.submit(device)
        denied = service.submit(device)
        assert denied.done and not denied.accepted
        assert denied.failure_kind == FailureKind.RATE_LIMITED.value
        service.flush()
        assert first.accepted

    def test_audit_log_observes_lifecycle(self):
        audit = AuditLogPolicy()
        service = build(n=2, seed=23, policies=[audit])
        service.authenticate_batch()
        newcomer = FleetDevice(
            "dev-new", PhotonicStrongPUF(seed=23, die_index=60, **FAST_PUF))
        service.enroll(newcomer)
        service.revoke("dev-new")
        events = [entry["event"] for entry in audit.events]
        assert events == ["round", "enroll", "revoke"]
        round_event = audit.events[0]
        assert round_event["accepted"] == 2 and round_event["rejected"] == 0

    def test_retry_policy_retries_transient_kinds_only(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(FailureKind.REPLAY.value, 1)
        assert policy.should_retry(FailureKind.DUPLICATE_DEVICE.value, 2)
        assert not policy.should_retry(FailureKind.REPLAY.value, 3)
        assert not policy.should_retry(FailureKind.BAD_MAC.value, 1)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_authenticate_retries_under_policy(self):
        service = build(n=1, seed=24)
        device = service.device_list[0]
        # Pre-poison: a stale pending session makes the first attempt
        # fail as a transient duplicate? Instead simulate determinism:
        # a bad MAC (flipped secret) must NOT be retried.
        device.current_response = 1 - device.current_response
        outcome = service.authenticate(device,
                                       retry_policy=RetryPolicy(max_retries=3))
        assert not outcome.accepted and outcome.attempts == 1
        assert outcome.failure_kind == FailureKind.BAD_MAC.value


class TestPersistence:
    def test_snapshot_restore_in_memory(self):
        service = build(n=3, seed=41)
        service.authenticate_batch()
        state = service.snapshot()
        assert state["manifest"]["config"]["n_devices"] == 3
        service.restore(state)
        # Registry back at the snapshot's session counts, nonce epoch
        # bumped (no nonce reuse even from a stale checkpoint), and the
        # restored service keeps serving the same physical devices.
        for device in service.device_list:
            assert service.registry.record(device.device_id).sessions == 1
        assert service.verifier._nonce_epoch >= 1
        assert service.authenticate_batch().n_accepted == 3

    def test_save_load_disk_round_trip(self, tmp_path):
        service = build(n=2, seed=42, n_spot_crps=8)
        service.authenticate_batch()
        path = service.save(str(tmp_path / "service-state"))
        assert path.endswith(".npz")
        restored = AuthService.load(path, service.device_list)
        assert restored.config == service.config
        assert len(restored.registry) == 2
        for device in restored.device_list:
            assert np.array_equal(
                restored.registry.record(device.device_id).current_response,
                service.registry.record(device.device_id).current_response,
            )
        # The restored service keeps serving: full round, zero desync.
        report = restored.authenticate_batch()
        assert report.n_accepted == 2

    def test_restore_drops_devices_enrolled_after_the_snapshot(self):
        # Regression: a device enrolled after the snapshot used to stay
        # in the service's fleet view after restore; the restored
        # registry doesn't know it, so the next default-scope round
        # raised not-enrolled for everyone instead of serving the fleet.
        service = build(n=2, seed=45)
        state = service.snapshot()
        latecomer = FleetDevice(
            "dev-late", PhotonicStrongPUF(seed=45, die_index=70, **FAST_PUF))
        service.enroll(latecomer)
        service.restore(state)
        assert "dev-late" not in service
        report = service.authenticate_batch()
        assert report.n_accepted == 2 and not report.failures

    def test_save_uses_config_snapshot_path(self, tmp_path):
        service = build(n=1, seed=43,
                        snapshot_path=str(tmp_path / "default-target"))
        path = service.save()
        assert path == str(tmp_path / "default-target") + ".npz"
        service_no_path = build(n=1, seed=44)
        with pytest.raises(ValueError):
            service_no_path.save()


class TestWireRound:
    def test_full_round_over_the_codec(self):
        service = build(n=3, seed=51)
        nonces, challenge_frames = service.open_round_wire()
        assert set(challenge_frames) == set(nonces)
        # The transport decodes challenges and drives real devices.
        response_frames = []
        for device in service.device_list:
            challenge = decode_message(challenge_frames[device.device_id])
            assert challenge.nonce == nonces[device.device_id]
            from repro.service import encode_message
            response_frames.append(
                encode_message(device.respond(challenge.nonce)))
        report_frame, confirmation_frames = service.verify_round_wire(
            response_frames, nonces)
        report = decode_message(report_frame)
        assert report.n_accepted == 3
        for device in service.device_list:
            confirmation = decode_message(
                confirmation_frames[device.device_id])
            device.confirm(confirmation.mac, nonces[device.device_id])
            service.verifier.finalize(device.device_id)
        for device in service.device_list:
            assert service.registry.record(device.device_id).sessions == 1

    def test_non_response_frame_rejected_as_codec_error(self):
        # The documented transport contract: undecodable/wrong-type
        # frames raise CodecError (which IS an AuthenticationFailure).
        from repro.service import AuthChallenge, CodecError, encode_message
        service = build(n=1, seed=52)
        nonces, __ = service.open_round_wire()
        stray = encode_message(AuthChallenge("dev-000000", b"x"))
        with pytest.raises(CodecError, match="RESPONSE"):
            service.verify_round_wire([stray], nonces)
        assert issubclass(CodecError, AuthenticationFailure)
