"""Wire-codec round-trips and rejection paths.

Property-style coverage: every message type, over a spread of derived
random contents (sizes 0..large, arbitrary bytes including embedded
NULs and length-prefix-looking runs), must encode → decode bit-exactly;
every truncation of a valid frame, foreign magic, unknown major
version, and unknown message type must be rejected with the shared
FailureKind taxonomy.
"""

import dataclasses

import pytest

from repro.fleet.verifier import AuthResponse, BatchAuthReport
from repro.protocols.mutual_auth import FailureKind
from repro.service import (
    MAGIC,
    SCHEMA_MAJOR,
    AuthChallenge,
    AuthConfirmation,
    CodecError,
    WireType,
    decode_message,
    encode_message,
    peek_header,
)
from repro.utils.rng import derive_rng


def random_bytes(rng, max_len=96) -> bytes:
    return rng.bytes(int(rng.integers(0, max_len)))


def random_id(rng) -> str:
    # Device ids with dashes, digits, and non-ASCII (UTF-8 path).
    stem = "".join(chr(int(c)) for c in rng.integers(0x61, 0x7A, 6))
    return f"dev-{stem}-{int(rng.integers(1e6)):06d}-é"


def message_corpus(seed: int, n: int = 40):
    """A deterministic spread of every wire message type."""
    rng = derive_rng(seed, "codec-corpus")
    corpus = []
    for index in range(n):
        corpus.append(AuthChallenge(random_id(rng), random_bytes(rng)))
        corpus.append(AuthResponse(random_id(rng), random_bytes(rng, 256),
                                   random_bytes(rng, 48)))
        corpus.append(AuthConfirmation(random_id(rng), random_bytes(rng)))
        report = BatchAuthReport()
        for __ in range(int(rng.integers(0, 5))):
            report.confirmations[random_id(rng)] = random_bytes(rng)
        for __ in range(int(rng.integers(0, 5))):
            device_id = random_id(rng)
            report.failures[device_id] = "reason: " + random_id(rng)
            report.failure_kinds[device_id] = FailureKind.BAD_MAC.value
        corpus.append(report)
    # Degenerate edges: empty everything.
    corpus.append(AuthChallenge("", b""))
    corpus.append(AuthResponse("", b"", b""))
    corpus.append(AuthConfirmation("", b""))
    corpus.append(BatchAuthReport())
    return corpus


class TestRoundTrips:
    def test_every_message_round_trips_bit_exactly(self):
        for message in message_corpus(seed=101):
            frame = encode_message(message)
            decoded = decode_message(frame)
            assert decoded == message
            # Bit-exact: re-encoding the decoded message reproduces the
            # frame byte for byte (the codec is canonical).
            assert encode_message(decoded) == frame

    def test_dataclass_identity_fields(self):
        message = AuthResponse("dev-x", b"\x00\x01\x02", b"\xff" * 32)
        decoded = decode_message(encode_message(message))
        assert dataclasses.asdict(decoded) == dataclasses.asdict(message)

    def test_report_dict_contents_survive(self):
        report = BatchAuthReport(
            confirmations={"b": b"\x01", "a": b"\x02"},
            failures={"c": "bad mac"},
            failure_kinds={"c": FailureKind.BAD_MAC.value},
        )
        decoded = decode_message(encode_message(report))
        assert decoded.confirmations == report.confirmations
        assert decoded.failures == report.failures
        assert decoded.failure_kinds == report.failure_kinds

    def test_header_is_self_describing(self):
        frame = encode_message(AuthChallenge("dev", b"n"))
        major, minor, wire_type = peek_header(frame)
        assert frame[:2] == MAGIC
        assert major == SCHEMA_MAJOR
        assert WireType(wire_type) is WireType.CHALLENGE


class TestRejection:
    def test_every_truncation_rejected(self):
        # Truncation anywhere — header, length prefix, or field body —
        # must raise CodecError, never return a wrong message or crash
        # with a foreign exception.
        for message in message_corpus(seed=202, n=4):
            frame = encode_message(message)
            for cut in range(len(frame)):
                truncated = frame[:cut]
                with pytest.raises(CodecError) as excinfo:
                    decode_message(truncated)
                assert excinfo.value.kind is FailureKind.MALFORMED

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_message(AuthChallenge("dev", b"n")))
        frame[0] ^= 0xFF
        with pytest.raises(CodecError, match="magic"):
            decode_message(bytes(frame))

    def test_unknown_major_version_rejected(self):
        frame = bytearray(encode_message(AuthChallenge("dev", b"n")))
        frame[2] = SCHEMA_MAJOR + 1
        with pytest.raises(CodecError, match="major") as excinfo:
            decode_message(bytes(frame))
        assert excinfo.value.kind is FailureKind.UNSUPPORTED_VERSION

    def test_newer_minor_version_accepted(self):
        message = AuthChallenge("dev", b"n")
        frame = bytearray(encode_message(message))
        frame[3] = 250  # a future additive revision within this major
        assert decode_message(bytes(frame)) == message

    def test_unknown_message_type_rejected(self):
        frame = bytearray(encode_message(AuthChallenge("dev", b"n")))
        frame[4] = 0x7F
        with pytest.raises(CodecError, match="message type") as excinfo:
            decode_message(bytes(frame))
        assert excinfo.value.kind is FailureKind.MALFORMED

    def test_wrong_field_count_rejected(self):
        challenge = encode_message(AuthChallenge("dev", b"n"))
        response = encode_message(AuthResponse("dev", b"b", b"t"))
        # Challenge payload (2 fields) under the RESPONSE type tag.
        hybrid = response[:5] + challenge[5:]
        with pytest.raises(CodecError) as excinfo:
            decode_message(hybrid)
        assert excinfo.value.kind is FailureKind.MALFORMED

    def test_non_utf8_device_id_rejected(self):
        frame = bytearray(encode_message(AuthChallenge("dd", b"n")))
        # The id field body starts right after the header + 4-byte
        # length prefix; 0xFF 0xFE is not valid UTF-8.
        frame[9:11] = b"\xff\xfe"
        with pytest.raises(CodecError):
            decode_message(bytes(frame))

    def test_ragged_report_pairs_rejected(self):
        from repro.utils.serialization import encode_fields
        bad = MAGIC + bytes([SCHEMA_MAJOR, 0, int(WireType.REPORT)]) + \
            encode_fields([
                encode_fields([b"only-a-key"]),  # odd field count
                encode_fields([]),
                encode_fields([]),
            ])
        with pytest.raises(CodecError, match="pairs"):
            decode_message(bad)

    def test_non_message_encode_rejected(self):
        with pytest.raises(TypeError):
            encode_message("not a message")

    def test_codec_errors_speak_failure_taxonomy(self):
        # Transport-level rejections aggregate exactly like protocol
        # failures: CodecError IS an AuthenticationFailure.
        from repro.protocols.mutual_auth import AuthenticationFailure
        assert issubclass(CodecError, AuthenticationFailure)
        try:
            decode_message(b"")
        except AuthenticationFailure as failure:
            assert failure.kind in set(FailureKind)


class TestSessionFrames:
    """Wire format 1.1: the session layer spoken by repro.service.net."""

    def session_corpus(self, seed: int = 303, n: int = 12):
        from repro.service import (
            SessionHello,
            SessionReject,
            SessionRequest,
            SessionResult,
            SessionWelcome,
        )
        rng = derive_rng(seed, "session-corpus")
        corpus = []
        for __ in range(n):
            corpus.append(SessionHello(random_id(rng),
                                       int(rng.integers(0, 256)),
                                       int(rng.integers(0, 256))))
            corpus.append(SessionWelcome(random_id(rng),
                                         int(rng.integers(0, 256)),
                                         int(rng.integers(0, 256))))
            corpus.append(SessionReject(FailureKind.MALFORMED.value,
                                        "why: " + random_id(rng)))
            params = {random_id(rng): random_bytes(rng)
                      for __ in range(int(rng.integers(0, 4)))}
            corpus.append(SessionRequest(random_id(rng), random_id(rng),
                                         params))
            corpus.append(SessionResult(random_id(rng), random_id(rng),
                                        bool(rng.integers(2)), params))
        corpus.append(SessionHello("", 0, 0))
        corpus.append(SessionRequest("", "", {}))
        corpus.append(SessionResult("", "", False, {}))
        corpus.append(SessionReject("", ""))
        return corpus

    def test_session_frames_round_trip_bit_exactly(self):
        for message in self.session_corpus():
            frame = encode_message(message)
            decoded = decode_message(frame)
            assert decoded == message
            assert encode_message(decoded) == frame

    def test_minor_version_bumped_additively(self):
        # 1.1 added the session frame types; 1.2 is a documented minor
        # bump that adds only the metrics/trace admin verbs on the
        # existing REQUEST/RESULT envelopes — same major, no new frame
        # types.
        from repro.service import SCHEMA_MINOR
        assert SCHEMA_MAJOR == 1
        assert SCHEMA_MINOR == 2
        for wire_type in ("HELLO", "WELCOME", "REJECT", "REQUEST",
                          "RESULT"):
            assert hasattr(WireType, wire_type)

    def test_every_session_truncation_rejected(self):
        for message in self.session_corpus(seed=404, n=2):
            frame = encode_message(message)
            for cut in range(len(frame)):
                with pytest.raises(CodecError) as excinfo:
                    decode_message(frame[:cut])
                assert excinfo.value.kind is FailureKind.MALFORMED

    def test_negotiation_same_major_takes_min_minor(self):
        from repro.service import (
            SCHEMA_MINOR,
            SessionHello,
            negotiate_version,
        )
        assert negotiate_version(
            SessionHello("dev", SCHEMA_MAJOR, 0)) == (SCHEMA_MAJOR, 0)
        assert negotiate_version(
            SessionHello("dev", SCHEMA_MAJOR, 250)) == (SCHEMA_MAJOR,
                                                        SCHEMA_MINOR)

    def test_negotiation_foreign_major_unsupported(self):
        from repro.service import SessionHello, negotiate_version
        with pytest.raises(CodecError) as excinfo:
            negotiate_version(SessionHello("dev", SCHEMA_MAJOR + 1, 0))
        assert excinfo.value.kind is FailureKind.UNSUPPORTED_VERSION

    def test_reject_maps_back_to_failure_taxonomy(self):
        from repro.service import SessionReject
        failure = SessionReject(FailureKind.UNSUPPORTED_VERSION.value,
                                "go away").to_failure()
        assert failure.kind is FailureKind.UNSUPPORTED_VERSION
        assert SessionReject("not-a-kind", "x").to_failure().kind \
            is FailureKind.UNSPECIFIED

    def test_result_ok_flag_must_be_canonical(self):
        from repro.service import SCHEMA_MINOR
        from repro.utils.serialization import encode_fields
        # Hand-build a RESULT whose ok flag is 2 — not a canonical bool.
        frame = MAGIC + bytes([SCHEMA_MAJOR, SCHEMA_MINOR,
                               int(WireType.RESULT)]) + encode_fields(
            [b"auth", b"dev", b"\x02", encode_fields([])])
        with pytest.raises(CodecError, match="ok flag"):
            decode_message(frame)

    def test_version_byte_range_enforced_on_encode(self):
        from repro.service import SessionHello
        with pytest.raises(TypeError):
            encode_message(SessionHello("dev", 256, 0))

    def test_legacy_1_0_frames_decode_under_1_1(self):
        # A frame stamped minor=0 (a 1.0 sender) decodes identically.
        message = AuthChallenge("dev", b"nonce")
        frame = bytearray(encode_message(message))
        frame[3] = 0
        assert decode_message(bytes(frame)) == message
