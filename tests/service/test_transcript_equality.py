"""End-to-end transcript equality: facade vs legacy entry points.

The acceptance gate of the service redesign: a 64-device hostile
campaign driven through :class:`AuthService` must produce *bit-identical*
round transcripts to the legacy ``provision_fleet`` /
``authenticate_fleet`` path — the facade changes the API surface, never
a byte of protocol traffic — and every wire message observed on the way
must round-trip exactly through the versioned codec.
"""

import warnings

import numpy as np
import pytest

from repro.fleet import (
    Adversary,
    FaultModel,
    FleetSimulator,
    ReplayAdversary,
    TamperAdversary,
    provision_fleet,
)
from repro.service import (
    AuthConfirmation,
    AuthService,
    FleetConfig,
    decode_message,
    encode_message,
)

FLEET = 64
SEED = 2026
FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)
HOSTILE = dict(
    faults=FaultModel(confirmation_drop=0.2, response_drop=0.05,
                      max_retries=4),
    adversaries_factory=lambda: [ReplayAdversary(probability=0.3),
                                 TamperAdversary(probability=0.02,
                                                 factor=1.4)],
)


class TranscriptRecorder(Adversary):
    """A passive wiretap: records every in-flight message, mutates none."""

    name = "transcript-recorder"

    def __init__(self):
        self.frames = []

    def mutate(self, messages, captured, rng):
        self.frames.extend(
            (message.device_id, bytes(message.body), bytes(message.tag))
            for message in messages
        )
        return messages


def legacy_campaign(n_rounds):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        registry, devices, verifier = provision_fleet(FLEET, seed=SEED,
                                                      **FAST_PUF)
    recorder = TranscriptRecorder()
    simulator = FleetSimulator(
        registry, devices, verifier, seed=SEED, faults=HOSTILE["faults"],
        adversaries=HOSTILE["adversaries_factory"]() + [recorder],
    )
    stats = simulator.run_campaign(n_rounds)
    return simulator, recorder, stats


def facade_campaign(n_rounds):
    service = AuthService.provision(FleetConfig(
        n_devices=FLEET, seed=SEED, puf=FAST_PUF,
        fault_model=HOSTILE["faults"],
    ))
    recorder = TranscriptRecorder()
    simulator = service.simulator(
        adversaries=HOSTILE["adversaries_factory"]() + [recorder],
    )
    stats = simulator.run_campaign(n_rounds)
    return service, simulator, recorder, stats


@pytest.fixture(scope="module")
def campaigns():
    n_rounds = 12
    legacy_sim, legacy_rec, legacy_stats = legacy_campaign(n_rounds)
    service, facade_sim, facade_rec, facade_stats = facade_campaign(n_rounds)
    return dict(legacy=(legacy_sim, legacy_rec, legacy_stats),
                facade=(service, facade_sim, facade_rec, facade_stats))


class TestHostileCampaignEquality:
    def test_round_transcripts_bit_identical(self, campaigns):
        __, legacy_rec, __ = campaigns["legacy"]
        *__, facade_rec, __ = campaigns["facade"]
        assert len(legacy_rec.frames) == len(facade_rec.frames)
        assert legacy_rec.frames == facade_rec.frames  # bytes, in order

    def test_campaign_statistics_identical(self, campaigns):
        *__, legacy_stats = campaigns["legacy"]
        *__, facade_stats = campaigns["facade"]
        legacy_json = legacy_stats.to_json()
        facade_json = facade_stats.to_json()
        # Wall-clock fields are the only legitimate difference.
        for volatile in ("elapsed_s", "auths_per_sec"):
            legacy_json.pop(volatile)
            facade_json.pop(volatile)
        assert legacy_json == facade_json
        assert facade_stats.desynchronized == 0

    def test_final_fleet_state_bit_identical(self, campaigns):
        legacy_sim, *__ = campaigns["legacy"]
        __, facade_sim, *__ = campaigns["facade"]
        assert sorted(legacy_sim.devices) == sorted(facade_sim.devices)
        for device_id in sorted(legacy_sim.devices):
            legacy_record = legacy_sim.registry.record(device_id)
            facade_record = facade_sim.registry.record(device_id)
            assert legacy_record.sessions == facade_record.sessions
            assert np.array_equal(legacy_record.current_response,
                                  facade_record.current_response)
            assert np.array_equal(
                legacy_sim.devices[device_id].current_response,
                facade_sim.devices[device_id].current_response,
            )

    def test_every_observed_message_round_trips_the_codec(self, campaigns):
        from repro.fleet.verifier import AuthResponse
        *__, facade_rec, __ = campaigns["facade"]
        assert facade_rec.frames, "hostile campaign produced no traffic"
        for device_id, body, tag in facade_rec.frames:
            message = AuthResponse(device_id, body, tag)
            frame = encode_message(message)
            assert decode_message(frame) == message
            assert encode_message(decode_message(frame)) == frame


class TestWireRoundMatchesInProcessRound:
    def test_codec_layer_does_not_change_protocol_bytes(self):
        """One round through verify_round_wire vs authenticate_batch."""
        plain = AuthService.provision(FleetConfig(
            n_devices=8, seed=77, puf=FAST_PUF))
        wired = AuthService.provision(FleetConfig(
            n_devices=8, seed=77, puf=FAST_PUF))

        # In-process round.
        report_plain = plain.authenticate_batch()

        # The same round, every message crossing the codec boundary.
        nonces, challenge_frames = wired.open_round_wire()
        response_frames = []
        for device in wired.device_list:
            challenge = decode_message(challenge_frames[device.device_id])
            response_frames.append(
                encode_message(device.respond(challenge.nonce)))
        report_frame, confirmation_frames = wired.verify_round_wire(
            response_frames, nonces)
        report_wired = decode_message(report_frame)
        for device in wired.device_list:
            confirmation = decode_message(
                confirmation_frames[device.device_id])
            assert isinstance(confirmation, AuthConfirmation)
            device.confirm(confirmation.mac, nonces[device.device_id])
            wired.verifier.finalize(device.device_id)

        # Same confirmations byte for byte, same rolled secrets.
        assert report_plain.confirmations == report_wired.confirmations
        for legacy, modern in zip(plain.device_list, wired.device_list):
            assert np.array_equal(legacy.current_response,
                                  modern.current_response)
