"""The replicated verifier plane: leases, fencing, failover, chaos.

Every test drives asyncio with ``asyncio.run`` inside a synchronous
test function; servers bind ephemeral loopback ports.  Timing-sensitive
lease logic is tested synchronously on a fake clock via
``ReplicaGroup.lease_tick``; the socket-level tests use short real
leases (hundreds of milliseconds) so the whole file stays fast.
"""

import asyncio

import pytest

from repro.protocols.mutual_auth import AuthenticationFailure, FailureKind
from repro.service import AuthService, FleetConfig, HAConfig, RetryPolicy
from repro.service.ha import (
    HAAuthClient,
    KillEvent,
    ReplicaGroup,
    run_replicated_campaign,
)
from repro.service.net import (
    AuthClient,
    AuthServer,
    ChaosTransport,
    LegChaos,
    NetConfig,
    RemoteAuthError,
)
from repro.service.policy import NETWORK_TRANSIENT_KINDS

FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16,
                noise_mw=0.0)
FAST_NET = NetConfig(response_timeout_s=2.0, latency_budget_s=0.005)
FAST_HA = HAConfig(n_replicas=3, lease_timeout_s=0.3,
                   heartbeat_interval_s=0.05)


def fleet_config(n_devices=4, seed=7, ha=FAST_HA, **kwargs):
    return FleetConfig(n_devices=n_devices, seed=seed, puf=FAST_PUF,
                       ha=ha, **kwargs)


def run(coro):
    return asyncio.run(coro)


class TestHAConfig:
    def test_defaults_and_validation(self):
        ha = HAConfig()
        assert ha.n_replicas == 1 and ha.handoff == "shared"
        with pytest.raises(ValueError):
            HAConfig(n_replicas=0)
        with pytest.raises(ValueError):
            HAConfig(heartbeat_interval_s=1.0, lease_timeout_s=0.5)
        with pytest.raises(ValueError):
            HAConfig(handoff="quantum")

    def test_attach_requires_sharded_backend(self):
        with pytest.raises(ValueError):
            FleetConfig(n_devices=2,
                        ha=HAConfig(n_replicas=2, handoff="attach"))

    def test_state_roundtrip_through_fleet_config(self):
        config = fleet_config()
        clone = FleetConfig.from_state(config.to_state())
        assert clone.ha == config.ha
        assert FleetConfig.from_state(
            FleetConfig(n_devices=2).to_state()).ha is None


class TestRetryPolicyBackoff:
    def test_network_kinds_are_retryable(self):
        policy = RetryPolicy.network()
        for kind in ("timeout", "connection-lost", "replica-unavailable",
                     "lease-expired"):
            assert kind in NETWORK_TRANSIENT_KINDS
            assert policy.should_retry(kind, 1)
        assert not policy.should_retry("bad-mac", 1)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy.network(backoff_base_s=0.01, backoff_max_s=0.05,
                                     jitter=0.0)
        delays = [policy.delay(attempt) for attempt in range(1, 7)]
        assert delays[0] == pytest.approx(0.01)
        assert delays[1] == pytest.approx(0.02)
        assert delays[2] == pytest.approx(0.04)
        assert all(d == pytest.approx(0.05) for d in delays[3:])

    def test_jitter_is_seeded_and_bounded(self):
        a = [RetryPolicy.network(seed=3, jitter=0.5).delay(2)
             for _ in range(3)]
        b = [RetryPolicy.network(seed=3, jitter=0.5).delay(2)
             for _ in range(3)]
        assert a == b                       # deterministic across instances
        base = RetryPolicy.network(jitter=0.0).delay(2)
        assert all(base <= d <= base * 1.5 for d in a)

    def test_facade_default_still_sleeps_nothing(self):
        assert RetryPolicy().delay(5) == 0.0


class TestLease:
    """Lease mechanics on a fake clock — no sockets, no sleeps."""

    def make_group(self):
        # Build the group without starting servers: lease_tick and
        # _fence are pure functions of (clock, replica liveness).
        clock = {"now": 0.0}
        service = AuthService.provision(fleet_config(n_devices=2),
                                        clock=lambda: clock["now"])
        group = ReplicaGroup(service, net_config=FAST_NET)
        for replica in group.replicas:
            replica.alive = True
        group._grant_lease(0, clock["now"])
        return group, clock

    def teardown_group(self, group):
        group.service.close()

    def test_live_primary_heartbeats(self):
        group, clock = self.make_group()
        try:
            for _ in range(10):
                clock["now"] += FAST_HA.lease_timeout_s * 0.9
                group.lease_tick()
            assert group.lease.holder == 0 and group.primary == 0
        finally:
            self.teardown_group(group)

    def test_dead_primary_expires_then_standby_promotes(self):
        group, clock = self.make_group()
        try:
            group.replicas[0].alive = False
            group.lease_tick()
            # Within the lease the deposed slot keeps its claim...
            assert group.lease.holder == 0
            assert group.primary is None            # ...but serves nothing
            clock["now"] += FAST_HA.lease_timeout_s + 0.01
            group.lease_tick()
            assert group.lease.holder == 1 and group.primary == 1
            assert group.promotions == 1
        finally:
            self.teardown_group(group)

    def test_promotion_prefers_lowest_live_index(self):
        group, clock = self.make_group()
        try:
            group.replicas[0].alive = False
            group.replicas[1].alive = False
            clock["now"] += FAST_HA.lease_timeout_s + 0.01
            group.lease_tick()
            assert group.lease.holder == 2
        finally:
            self.teardown_group(group)

    def test_fence_taxonomy(self):
        group, clock = self.make_group()
        try:
            assert group._fence(0) is None                 # primary serves
            refusal = group._fence(1)                      # standby refuses
            assert refusal.kind is FailureKind.REPLICA_UNAVAILABLE
            clock["now"] += FAST_HA.lease_timeout_s + 0.01
            refusal = group._fence(0)                      # deposed primary
            assert refusal.kind is FailureKind.LEASE_EXPIRED
        finally:
            self.teardown_group(group)

    def test_epoch_floors_never_reuse_a_stream(self):
        group, clock = self.make_group()
        try:
            streams = [replica.service.verifier.stream_epoch
                       for replica in group.replicas]
            assert len(set(streams)) == len(streams)
            # Ten restore cycles of replica 1: every incarnation gets a
            # fresh stream in the same residue class.
            for _ in range(10):
                verifier = group._make_verifier(
                    1, group.replicas[1].service.registry)
                assert verifier.stream_epoch not in streams
                assert verifier.stream_epoch % 3 == 1
                streams.append(verifier.stream_epoch)
        finally:
            self.teardown_group(group)


class TestReplicaGroupSockets:
    def test_standby_refuses_primary_serves(self):
        async def main():
            group = await ReplicaGroup.provision(fleet_config(),
                                                 net_config=FAST_NET)
            try:
                device = group.devices[0]
                host, port = group.endpoints[1]        # a standby
                async with AuthClient.connect(host, port) as client:
                    with pytest.raises(RemoteAuthError) as exc:
                        await client.enroll(device)
                    assert exc.value.kind is FailureKind.REPLICA_UNAVAILABLE
                host, port = group.endpoints[0]        # the primary
                async with AuthClient.connect(host, port) as client:
                    ticket = await client.authenticate(device)
                assert ticket.accepted
            finally:
                await group.aclose()
        run(main())

    def test_kill_promotes_and_restored_replica_rejoins(self):
        async def main():
            group = await ReplicaGroup.provision(fleet_config(),
                                                 net_config=FAST_NET)
            try:
                await group.kill_replica(0)
                promoted = await group.wait_for_primary()
                assert promoted == 1
                await group.restore_replica(0)
                assert group.replicas[0].alive
                assert group.primary == 1              # still a standby
                # The restored replica's verifier is a fresh incarnation
                # on a fresh stream.
                assert group.replicas[0].starts == 2
                kinds = {event["event"] for event in group.events}
                assert {"kill", "promote", "restore"} <= kinds
            finally:
                await group.aclose()
        run(main())

    def test_endpoints_stable_across_kill_restore(self):
        async def main():
            group = await ReplicaGroup.provision(fleet_config(),
                                                 net_config=FAST_NET)
            try:
                before = group.endpoints
                await group.kill_replica(0)
                await group.restore_replica(0)
                assert group.endpoints == before
            finally:
                await group.aclose()
        run(main())


class TestHAAuthClient:
    def test_fails_over_past_a_dead_endpoint(self):
        async def main():
            group = await ReplicaGroup.provision(fleet_config(),
                                                 net_config=FAST_NET)
            try:
                device = group.devices[0]
                # Endpoint order: standby first, then a black hole of a
                # port, then the primary — the client must walk the list.
                dead = ("127.0.0.1", 1)
                endpoints = [group.endpoints[1], dead, group.endpoints[0]]
                async with HAAuthClient(
                        endpoints, verb_timeout_s=2.0,
                        retry_policy=RetryPolicy.network(
                            backoff_base_s=0.005)) as client:
                    ticket = await client.authenticate(device)
                    assert ticket.accepted
                    assert client.failovers >= 2
            finally:
                await group.aclose()
        run(main())

    def test_authenticates_through_a_promotion(self):
        async def main():
            group = await ReplicaGroup.provision(fleet_config(),
                                                 net_config=FAST_NET)
            try:
                device = group.devices[0]
                async with HAAuthClient(
                        group.endpoints, verb_timeout_s=2.0,
                        retry_policy=RetryPolicy.network(
                            max_retries=12, backoff_base_s=0.01,
                            backoff_max_s=0.1)) as client:
                    first = await client.authenticate(device)
                    assert first.accepted
                    await group.kill_replica(0)
                    # No primary exists until the lease runs out; the
                    # client must ride that gap on retries alone.
                    second = await client.authenticate(device)
                    assert second.accepted
                # finalize is fire-and-forget on the client; give the
                # promoted server a beat to process it.
                for _ in range(50):
                    if int(group.registry.record(
                            device.device_id).sessions) == 2:
                        break
                    await asyncio.sleep(0.02)
                assert int(group.registry.record(
                    device.device_id).sessions) == 2
            finally:
                await group.aclose()
        run(main())

    def test_retried_enroll_treats_duplicate_as_done(self):
        async def main():
            config = fleet_config()
            service = AuthService.provision(config)
            device = service.device_list[0]
            service.registry.evict = getattr(service.registry, "evict", None)
            async with AuthServer(service, FAST_NET) as server:
                # First endpoint refuses the dial: the client rotates,
                # marking the verb ambiguous — a later duplicate-device
                # refusal then means "the enroll landed", not an error.
                endpoints = [("127.0.0.1", 1),
                             ("127.0.0.1", server.port)]
                async with HAAuthClient(
                        endpoints,
                        retry_policy=RetryPolicy.network(
                            backoff_base_s=0.005)) as client:
                    await client.enroll(device)     # swallowed duplicate
            service.close()
        run(main())

    def test_protocol_failures_do_not_fail_over(self):
        async def main():
            group = await ReplicaGroup.provision(fleet_config(),
                                                 net_config=FAST_NET)
            try:
                stranger = AuthService.provision(
                    FleetConfig(n_devices=1, seed=999, puf=FAST_PUF))
                intruder = stranger.device_list[0]
                async with HAAuthClient(group.endpoints,
                                        verb_timeout_s=2.0) as client:
                    ticket = await client.authenticate(intruder)
                    assert not ticket.accepted
                    # The intruder's id collides with an enrolled device,
                    # so the verifier sees a bad MAC; either way it is a
                    # protocol refusal, not a transport fault — the
                    # client must not burn retries walking endpoints.
                    assert ticket.failure_kind in (
                        FailureKind.BAD_MAC.value,
                        FailureKind.NOT_ENROLLED.value)
                    assert client.failovers == 0
                stranger.close()
            finally:
                await group.aclose()
        run(main())


class TestClientHandshakeTimeouts:
    """The hang fix: a server that dies (or stalls) between HELLO and
    WELCOME must surface a taxonomy-coded error within the handshake
    timeout, never hang the client."""

    def test_silent_server_times_out_with_timeout_kind(self):
        async def main():
            async def mute(reader, writer):
                await asyncio.sleep(10)            # accept, say nothing
            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(RemoteAuthError) as exc:
                    await asyncio.wait_for(
                        AuthClient.connect("127.0.0.1", port,
                                           handshake_timeout_s=0.2),
                        timeout=2.0)
                assert exc.value.kind is FailureKind.TIMEOUT
            finally:
                server.close()
                await server.wait_closed()
        run(main())

    def test_server_death_mid_handshake_is_connection_lost(self):
        async def main():
            async def slam(reader, writer):
                await reader.read(64)              # take the HELLO...
                writer.close()                     # ...die before WELCOME
            server = await asyncio.start_server(slam, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(RemoteAuthError) as exc:
                    await asyncio.wait_for(
                        AuthClient.connect("127.0.0.1", port,
                                           handshake_timeout_s=1.0),
                        timeout=2.0)
                assert exc.value.kind is FailureKind.CONNECTION_LOST
            finally:
                server.close()
                await server.wait_closed()
        run(main())

    def test_unreachable_port_is_connection_lost(self):
        async def main():
            with pytest.raises(RemoteAuthError) as exc:
                await AuthClient.connect("127.0.0.1", 1,
                                         handshake_timeout_s=0.5)
            assert exc.value.kind is FailureKind.CONNECTION_LOST
        run(main())


class TestChaosTransport:
    def test_faultless_proxy_is_transparent(self):
        async def main():
            service = AuthService.provision(fleet_config(ha=None))
            device = service.device_list[0]
            async with AuthServer(service, FAST_NET) as server:
                async with ChaosTransport(server.host, server.port) as chaos:
                    async with AuthClient.connect(chaos.host,
                                                  chaos.port) as client:
                        ticket = await client.authenticate(device)
            assert ticket.accepted
            assert chaos.metrics.frames_forwarded > 0
            assert chaos.metrics.frames_dropped == 0
            service.close()
        run(main())

    def test_leg_chaos_validation(self):
        with pytest.raises(ValueError):
            LegChaos(drop=1.5)
        with pytest.raises(ValueError):
            LegChaos(delay_range_s=(0.5, 0.1))

    def test_downlink_blackhole_forces_timeout_then_retry_succeeds(self):
        async def main():
            service = AuthService.provision(fleet_config(ha=None))
            device = service.device_list[0]
            async with AuthServer(service, FAST_NET) as server:
                chaos = ChaosTransport(server.host, server.port,
                                       downlink=LegChaos(blackhole=1.0),
                                       seed=3)
                async with chaos:
                    async with AuthClient.connect(
                            chaos.host, chaos.port,
                            response_timeout_s=0.5) as client:
                        ticket = await client.authenticate(device)
                        assert not ticket.accepted
                        assert ticket.failure_kind == \
                            FailureKind.TIMEOUT.value
                # The device never saw a confirmation, so nobody rolled;
                # a clean retry must succeed from the same state.
                async with AuthClient.connect(server.host,
                                              server.port) as client:
                    ticket = await client.authenticate(device)
                    assert ticket.accepted
            service.close()
        run(main())

    def test_duplicated_frames_do_not_break_authentication(self):
        async def main():
            service = AuthService.provision(fleet_config(ha=None))
            async with AuthServer(service, FAST_NET) as server:
                chaos = ChaosTransport(
                    server.host, server.port, seed=11,
                    uplink=LegChaos(duplicate=1.0),
                    downlink=LegChaos(duplicate=1.0))
                async with chaos:
                    async with AuthClient.connect(
                            chaos.host, chaos.port,
                            response_timeout_s=2.0) as client:
                        for device in service.device_list:
                            ticket = await client.authenticate(device)
                            assert ticket.accepted, ticket.failure
            assert chaos.metrics.frames_duplicated > 0
            service.close()
        run(main())

    def test_truncate_tears_the_connection(self):
        async def main():
            service = AuthService.provision(fleet_config(ha=None))
            device = service.device_list[0]
            async with AuthServer(service, FAST_NET) as server:
                chaos = ChaosTransport(server.host, server.port,
                                       uplink=LegChaos(truncate=1.0),
                                       seed=5)
                async with chaos:
                    client = await AuthClient.connect(
                        chaos.host, chaos.port, response_timeout_s=1.0)
                    try:
                        ticket = await client.authenticate(device)
                        assert not ticket.accepted
                    except AuthenticationFailure as failure:
                        assert failure.kind in (FailureKind.CONNECTION_LOST,
                                                FailureKind.TIMEOUT)
                    finally:
                        await client.aclose()
            assert chaos.metrics.frames_truncated >= 1
            service.close()
        run(main())

    def test_kill_connections_severs_live_sessions(self):
        async def main():
            service = AuthService.provision(fleet_config(ha=None))
            async with AuthServer(service, FAST_NET) as server:
                async with ChaosTransport(server.host,
                                          server.port) as chaos:
                    client = await AuthClient.connect(
                        chaos.host, chaos.port, response_timeout_s=1.0)
                    assert chaos.kill_connections() >= 1
                    # Depending on how fast the EOF propagates, the verb
                    # either raises connection-lost or settles a failed
                    # ticket; it must never succeed.
                    try:
                        ticket = await asyncio.wait_for(
                            client.authenticate(service.device_list[0]),
                            timeout=3.0)
                        assert not ticket.accepted
                    except AuthenticationFailure:
                        pass
                    await client.aclose()
            service.close()
        run(main())


class TestMidRoundKillCampaign:
    def test_campaign_with_one_mid_round_kill_converges_clean(self):
        async def main():
            group = await ReplicaGroup.provision(
                fleet_config(n_devices=6), net_config=FAST_NET)
            try:
                report = await run_replicated_campaign(
                    group, n_rounds=2,
                    kill_schedule=[KillEvent(0, 3, 0)],
                    verb_timeout_s=2.0)
                assert report.failures == {}
                assert report.accepted == 6 * 3     # 2 rounds + reconcile
                assert report.kills == [(0, 0)]
                assert report.promotions >= 1
                assert report.desynchronized == []
                assert report.nonces_unique
                assert report.commit_log_unresolved == 0
                assert group.assert_nonces_unique() == report.nonces_issued
            finally:
                await group.aclose()
        run(main())
