"""The acceptance gate for ``repro.service.net``: wire == in-process.

A hostile 64-device campaign (drops, replays, tampering, retries) is run
twice from the same seed — once against the in-process
:class:`AuthService` path, once with every verifier touch-point routed
through :class:`AuthClient` → :class:`AuthServer` over real TCP sockets
— and the two runs must be **bit-identical**: every nonce, every encoded
response frame, every report frame, every finalize/abort decision, the
campaign statistics, and the final registry/verifier/device state.

The wire run reuses :class:`FleetSimulator` verbatim (its fault and
adversary RNG draw sequence lives entirely in ``_attempt``) and overrides
only the four ``_transport_*`` hooks, so any divergence is the
transport's fault — exactly what this test exists to catch.
"""

import asyncio
import dataclasses
import threading

import numpy as np

from repro.fleet.lifecycle import (
    FaultModel,
    FleetSimulator,
    ReplayAdversary,
    TamperAdversary,
)
from repro.service import AuthService, FleetConfig, encode_message
from repro.service.net import AuthClient, AuthServer

FLEET = 64
SEED = 2026
ROUNDS = 5
FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)


def provision():
    return AuthService.provision(FleetConfig(
        n_devices=FLEET, seed=SEED, puf=FAST_PUF))


def hostile():
    return (FaultModel(response_drop=0.05, confirmation_drop=0.2,
                       max_retries=4),
            [ReplayAdversary(probability=0.3),
             TamperAdversary(probability=0.02, factor=1.4)])


class TranscriptingSimulator(FleetSimulator):
    """In-process baseline that records the transport touch-points as
    the codec frames a transport would carry."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.transcript = []

    def _transport_open_round(self, ids):
        nonces = super()._transport_open_round(ids)
        self.transcript.append(("open", tuple(ids),
                                tuple(sorted(nonces.items()))))
        return nonces

    def _transport_verify_round(self, messages, nonces):
        self.transcript.append(
            ("verify", tuple(encode_message(m) for m in messages)))
        report = super()._transport_verify_round(messages, nonces)
        self.transcript.append(("report", encode_message(report)))
        return report

    def _transport_finalize(self, device_id):
        self.transcript.append(("finalize", device_id))
        super()._transport_finalize(device_id)

    def _transport_abort(self, device_id):
        self.transcript.append(("abort", device_id))
        super()._transport_abort(device_id)


class WireSimulator(FleetSimulator):
    """The same campaign with every touch-point crossing a real socket."""

    def __init__(self, *args, bridge, **kwargs):
        super().__init__(*args, **kwargs)
        self._bridge = bridge
        self.transcript = []

    def _wire(self, coro):
        return asyncio.run_coroutine_threadsafe(
            coro, self._bridge.loop).result(60)

    def _transport_open_round(self, ids):
        nonces = self._wire(self._bridge.client.open_round_wire(ids))
        self.transcript.append(("open", tuple(ids),
                                tuple(sorted(nonces.items()))))
        return nonces

    def _transport_verify_round(self, messages, nonces):
        frames = [encode_message(m) for m in messages]
        self.transcript.append(("verify", tuple(frames)))
        report, __ = self._wire(
            self._bridge.client.verify_round_wire(frames))
        # The codec is canonical (key-sorted dicts), so re-encoding the
        # decoded report reproduces the REPORT frame byte for byte.
        self.transcript.append(("report", encode_message(report)))
        # In-process insertion order is first-occurrence-of-device in
        # the message list (duplicates can never confirm); restore it so
        # the confirmation-loop RNG draws consume in the same order.
        order = [m.device_id for m in messages
                 if m.device_id in report.confirmations]
        seen = dict.fromkeys(order)
        report.confirmations = {
            device_id: report.confirmations[device_id]
            for device_id in seen
        }
        return report

    def _transport_finalize(self, device_id):
        self.transcript.append(("finalize", device_id))
        self._wire(self._bridge.client.finalize(device_id))

    def _transport_abort(self, device_id):
        self.transcript.append(("abort", device_id))
        self._wire(self._bridge.client.abort(device_id))


class ServerBridge:
    """AuthServer + one gateway AuthClient on a background event loop,
    so the synchronous FleetSimulator can block on wire futures."""

    def __init__(self, service):
        self._service = service
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.loop = None
        self.client = None
        self.error = None

    def __enter__(self):
        self._thread.start()
        if not self._ready.wait(30):
            raise RuntimeError("server bridge never came up")
        if self.error is not None:
            raise self.error
        return self

    def __exit__(self, *exc):
        self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            async with AuthServer(self._service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port,
                        peer="equality-gateway") as client:
                    self.client = client
                    self._ready.set()
                    await self._stop.wait()
        except Exception as exc:               # pragma: no cover
            self.error = exc
            self._ready.set()


def run_in_process():
    service = provision()
    faults, adversaries = hostile()
    sim = TranscriptingSimulator.from_service(
        service, faults=faults, adversaries=adversaries)
    stats = sim.run_campaign(ROUNDS)
    return service, sim, stats


def run_over_wire():
    service = provision()
    faults, adversaries = hostile()
    with ServerBridge(service) as bridge:
        sim = WireSimulator.from_service(
            service, faults=faults, adversaries=adversaries, bridge=bridge)
        stats = sim.run_campaign(ROUNDS)
    return service, sim, stats


def strip_timing(stats) -> dict:
    payload = dataclasses.asdict(stats)
    payload.pop("elapsed_s")
    return payload


class TestWireEqualsInProcess:
    def test_hostile_campaign_is_bit_identical(self):
        local_service, local_sim, local_stats = run_in_process()
        wire_service, wire_sim, wire_stats = run_over_wire()

        # Transport transcript: every nonce, frame, and two-phase
        # decision, in order, byte for byte.
        assert len(wire_sim.transcript) == len(local_sim.transcript)
        for wire_entry, local_entry in zip(wire_sim.transcript,
                                           local_sim.transcript):
            assert wire_entry == local_entry

        # Campaign statistics (timing aside) match exactly.
        assert strip_timing(wire_stats) == strip_timing(local_stats)
        assert wire_stats.authenticated > 0
        assert wire_stats.desynchronized == 0 == local_stats.desynchronized

        # Final state: registry arrays, verifier counters, device CRPs.
        wire_state = wire_service.snapshot()
        local_state = local_service.snapshot()
        assert wire_state["manifest"] == local_state["manifest"]
        assert wire_state["arrays"].keys() == local_state["arrays"].keys()
        for key in wire_state["arrays"]:
            assert np.array_equal(wire_state["arrays"][key],
                                  local_state["arrays"][key]), key
        for wire_dev, local_dev in zip(wire_sim.devices.values(),
                                       local_sim.devices.values()):
            assert wire_dev.device_id == local_dev.device_id
            assert np.array_equal(wire_dev.current_response,
                                  local_dev.current_response)

    def test_hostility_is_actually_exercised(self):
        # Guard against the equality above passing vacuously: the seeded
        # campaign must include drops, retries, and adversary traffic.
        __, sim, stats = run_in_process()
        assert stats.dropped_confirmations > 0
        assert stats.dropped_responses > 0
        assert stats.retries > 0
        assert stats.adversary_messages > 0
        assert any(("abort", d) in sim.transcript
                   for d in sim.devices), "no two-phase aborts exercised"
