"""Deprecated entry points: still functional, now warning.

``provision_fleet`` / ``respond_fleet`` / ``respond_fleet_staged`` must
(1) emit ``DeprecationWarning`` naming their replacement, and (2)
delegate — producing results identical to the facade / rounds path.
"""

import numpy as np
import pytest

from repro.fleet import (
    provision_fleet,
    respond_fleet,
    respond_fleet_staged,
    respond_round,
)
from repro.service import AuthService, FleetConfig

FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)


class TestProvisionFleetShim:
    def test_warns_and_names_replacement(self):
        with pytest.warns(DeprecationWarning,
                          match="AuthService.provision"):
            provision_fleet(1, seed=81, **FAST_PUF)

    def test_delegates_bit_exactly(self):
        with pytest.warns(DeprecationWarning):
            registry, devices, verifier = provision_fleet(
                3, seed=82, n_spot_crps=8, **FAST_PUF)
        service = AuthService.provision(FleetConfig(
            n_devices=3, seed=82, n_spot_crps=8, puf=FAST_PUF))
        assert [d.device_id for d in devices] == \
            [d.device_id for d in service.device_list]
        for legacy, modern in zip(devices, service.device_list):
            assert np.array_equal(legacy.current_response,
                                  modern.current_response)
            legacy_record = registry.record(legacy.device_id)
            modern_record = service.registry.record(modern.device_id)
            assert np.array_equal(legacy_record.crp_challenges,
                                  modern_record.crp_challenges)
            assert np.array_equal(legacy_record.crp_responses,
                                  modern_record.crp_responses)
        # The shim-built verifier still serves rounds.
        assert verifier.authenticate_fleet(devices).n_accepted == 3

    def test_unstacked_and_sharding_kwargs_still_work(self):
        with pytest.warns(DeprecationWarning):
            __, devices, __ = provision_fleet(2, seed=83, stacked=False,
                                              **FAST_PUF)
        assert all(device.plane is None for device in devices)


class TestRespondFleetShims:
    @staticmethod
    def twin_fleets():
        """Two identically-seeded fleets: same nonces, same noise."""
        return tuple(
            AuthService.provision(FleetConfig(n_devices=3, seed=84,
                                              puf=FAST_PUF))
            for __ in range(2)
        )

    def test_respond_fleet_warns_and_matches_rounds(self):
        legacy_svc, modern_svc = self.twin_fleets()
        nonces_a = legacy_svc.verifier.open_round(legacy_svc.device_ids())
        nonces_b = modern_svc.verifier.open_round(modern_svc.device_ids())
        assert nonces_a == nonces_b
        with pytest.warns(DeprecationWarning, match="respond_round"):
            legacy = respond_fleet(legacy_svc.device_list, nonces_a)
        modern = respond_round(modern_svc.device_list, nonces_b)
        assert [m.device_id for m in legacy] == [m.device_id for m in modern]
        assert [m.body for m in legacy] == [m.body for m in modern]
        assert [m.tag for m in legacy] == [m.tag for m in modern]

    def test_respond_fleet_staged_warns_and_streams(self):
        service, __ = self.twin_fleets()
        devices = service.device_list
        nonces = service.verifier.open_round([d.device_id for d in devices])
        with pytest.warns(DeprecationWarning, match="respond_round_staged"):
            chunks = list(respond_fleet_staged(devices, nonces))
        positions = [p for chunk, __ in chunks for p in chunk]
        assert sorted(positions) == list(range(len(devices)))
