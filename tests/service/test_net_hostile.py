"""Hostile transport coverage: the server against broken/adversarial peers.

Mirrors the codec's rejection-path discipline
(``tests/service/test_codec.py``) at the socket layer: every-byte
fragmentation and truncation sweeps, mid-handshake disconnects,
slow-loris trickles, duplicate device ids racing over two sockets,
oversized frames, and foreign-major HELLOs.  The invariant throughout:
a hostile socket is isolated and closed with a taxonomy-coded REJECT —
it never takes the server, another connection, or an in-flight
micro-round down with it.
"""

import asyncio

import pytest

from repro.protocols.mutual_auth import FailureKind
from repro.service import (
    AuthService,
    FleetConfig,
    SessionHello,
    SessionReject,
    SessionRequest,
    decode_message,
    encode_message,
)
from repro.service.codec import SCHEMA_MAJOR
from repro.service.net import (
    AuthClient,
    AuthServer,
    NetConfig,
    read_frame,
    write_frame,
)
from repro.service.net.stream import _LENGTH

FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)


def provision(n_devices=4, seed=7, **kwargs):
    return AuthService.provision(FleetConfig(
        n_devices=n_devices, seed=seed, puf=FAST_PUF, **kwargs))


def run(coro):
    return asyncio.run(coro)


def framed(message) -> bytes:
    payload = encode_message(message)
    return _LENGTH.pack(len(payload)) + payload


async def raw_connection(server):
    return await asyncio.open_connection("127.0.0.1", server.port)


async def server_reply(reader):
    """First frame the server answers, or None on silent close."""
    try:
        return await asyncio.wait_for(read_frame(reader), 10)
    except Exception:
        return None


class TestFragmentationAndTruncation:
    def test_every_byte_fragmentation_still_handshakes(self):
        # The HELLO delivered one byte at a time must still negotiate:
        # frame reassembly cannot depend on TCP segment boundaries.
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                reader, writer = await raw_connection(server)
                for byte in framed(SessionHello("drip")):
                    writer.write(bytes([byte]))
                    await writer.drain()
                    await asyncio.sleep(0)
                reply = await server_reply(reader)
                writer.close()
                return decode_message(reply)
        welcome = run(main())
        assert welcome.peer == "repro-auth-server"

    def test_every_truncation_of_the_hello_is_isolated(self):
        # Closing mid-frame at EVERY byte offset: the server must shrug
        # each one off (handshake failure) and keep serving others.
        async def main():
            service = provision()
            config = NetConfig(handshake_timeout_s=0.2)
            async with AuthServer(service, config) as server:
                wire = framed(SessionHello("cut"))
                for cut in range(len(wire)):
                    reader, writer = await raw_connection(server)
                    writer.write(wire[:cut])
                    await writer.drain()
                    writer.close()
                    await writer.wait_closed()
                # Still alive for a well-behaved client afterwards.
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    ticket = await client.authenticate(
                        service.device_list[0])
                return len(wire), ticket, server.metrics
        n_cuts, ticket, metrics = run(main())
        assert ticket.accepted
        assert metrics.handshakes_failed == n_cuts

    def test_truncated_frame_after_handshake_rejected(self):
        async def main():
            service = provision()
            config = NetConfig(frame_timeout_s=0.2)
            async with AuthServer(service, config) as server:
                reader, writer = await raw_connection(server)
                write_frame(writer, encode_message(SessionHello("trunc")))
                await writer.drain()
                await server_reply(reader)               # WELCOME
                wire = framed(SessionRequest("auth", "dev-000000"))
                writer.write(wire[: len(wire) // 2])
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.05)
                # The service survives untouched.
                report = service.authenticate_batch()
                return report
        report = run(main())
        assert len(report.confirmations) == 4


class TestHandshakeAbuse:
    def test_mid_handshake_disconnect(self):
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                __, writer = await raw_connection(server)
                writer.close()          # not a single byte sent
                await writer.wait_closed()
                await asyncio.sleep(0.05)
                return server.metrics
        metrics = run(main())
        assert metrics.handshakes_failed == 1
        assert metrics.connections_closed == 1

    def test_handshake_timeout_closes_silent_peer(self):
        async def main():
            service = provision()
            config = NetConfig(handshake_timeout_s=0.1)
            async with AuthServer(service, config) as server:
                reader, writer = await raw_connection(server)
                # Send nothing; the server must hang up on its own.
                got = await asyncio.wait_for(reader.read(1), 5)
                return got, server.metrics
        got, metrics = run(main())
        assert got == b""               # EOF from the server side
        assert metrics.handshakes_failed == 1

    def test_foreign_major_hello_rejected_on_the_wire(self):
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                reader, writer = await raw_connection(server)
                hello = bytearray(encode_message(SessionHello("future")))
                hello[2] = SCHEMA_MAJOR + 1     # header major byte
                writer.write(_LENGTH.pack(len(hello)) + bytes(hello))
                await writer.drain()
                reply = await server_reply(reader)
                return decode_message(reply)
        reject = run(main())
        assert isinstance(reject, SessionReject)
        assert reject.kind == FailureKind.UNSUPPORTED_VERSION.value

    def test_non_hello_first_frame_rejected(self):
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                reader, writer = await raw_connection(server)
                write_frame(writer, encode_message(
                    SessionRequest("auth", "dev-000000")))
                await writer.drain()
                reply = await server_reply(reader)
                return decode_message(reply)
        reject = run(main())
        assert isinstance(reject, SessionReject)
        assert reject.kind == FailureKind.MALFORMED.value

    def test_garbage_bytes_rejected(self):
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                reader, writer = await raw_connection(server)
                garbage = b"\xde\xad\xbe\xef" * 4
                writer.write(_LENGTH.pack(len(garbage)) + garbage)
                await writer.drain()
                reply = await server_reply(reader)
                return None if reply is None else decode_message(reply)
        reject = run(main())
        assert isinstance(reject, SessionReject)

    def test_client_raises_taxonomy_error_on_reject(self):
        # The SDK surfaces a REJECT handshake reply as a RemoteAuthError
        # carrying the server's taxonomy kind.
        from repro.service.net import RemoteAuthError

        async def rejecting_peer(reader, writer):
            await read_frame(reader)                     # the HELLO
            write_frame(writer, encode_message(SessionReject(
                FailureKind.UNSUPPORTED_VERSION.value, "too new")))
            await writer.drain()
            writer.close()

        async def main():
            stub = await asyncio.start_server(
                rejecting_peer, "127.0.0.1", 0)
            port = stub.sockets[0].getsockname()[1]
            try:
                with pytest.raises(RemoteAuthError) as excinfo:
                    await AuthClient.connect("127.0.0.1", port,
                                             handshake_timeout_s=2.0)
            finally:
                stub.close()
                await stub.wait_closed()
            return excinfo.value
        error = run(main())
        assert error.kind is FailureKind.UNSUPPORTED_VERSION


class TestSlowLoris:
    def test_slow_loris_frame_times_out(self):
        async def main():
            service = provision()
            config = NetConfig(frame_timeout_s=0.15)
            async with AuthServer(service, config) as server:
                reader, writer = await raw_connection(server)
                write_frame(writer, encode_message(SessionHello("loris")))
                await writer.drain()
                await server_reply(reader)               # WELCOME
                # One byte of a frame, then silence: the per-socket
                # frame timeout must evict this peer.
                writer.write(b"\x00")
                await writer.drain()
                reply = await server_reply(reader)
                closed = await asyncio.wait_for(reader.read(1), 5)
                return reply, closed, server.metrics
        reply, closed, metrics = run(main())
        assert closed == b""            # connection torn down
        assert metrics.rejected_connections == 1

    def test_slow_loris_does_not_stall_other_connections(self):
        async def main():
            service = provision()
            config = NetConfig(frame_timeout_s=0.5)
            async with AuthServer(service, config) as server:
                __, loris_writer = await raw_connection(server)
                loris_writer.write(b"\x00")       # eternal partial frame
                await loris_writer.drain()
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    ticket = await client.authenticate(
                        service.device_list[0])
                loris_writer.close()
                return ticket
        assert run(main()).accepted


class TestConcurrentDuplicates:
    def test_duplicate_device_id_over_two_sockets(self):
        # The same device identity racing on two connections: the
        # coalescer's duplicate trigger must keep each micro-round
        # single-occupancy, and the rolling CRP must stay synchronized
        # (exactly one device object holds the hardware, so one of the
        # two interleavings commits and nothing desynchronizes).
        async def main():
            service = provision(latency_budget_s=0.01)
            device = service.device_list[0]
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as first, \
                        AuthClient.connect("127.0.0.1",
                                           server.port) as second:
                    ticket_a, ticket_b = await asyncio.gather(
                        first.submit(device), second.submit(device))
                    await asyncio.gather(ticket_a.wait(10),
                                         ticket_b.wait(10))
            record = service.registry.record(device.device_id)
            return ticket_a, ticket_b, record, device
        ticket_a, ticket_b, record, device = run(main())
        assert ticket_a.done and ticket_b.done
        # However the race lands, verifier and device agree afterwards.
        import numpy as np
        assert np.array_equal(record.current_response,
                              device.current_response)

    def test_oversized_frame_rejected_before_buffering(self):
        async def main():
            service = provision()
            config = NetConfig(max_frame_bytes=1024)
            async with AuthServer(service, config) as server:
                reader, writer = await raw_connection(server)
                write_frame(writer, encode_message(SessionHello("big")))
                await writer.drain()
                await server_reply(reader)               # WELCOME
                writer.write(_LENGTH.pack(1 << 30))      # 1 GiB claim
                await writer.drain()
                reply = await server_reply(reader)
                return None if reply is None else decode_message(reply)
        reject = run(main())
        assert isinstance(reject, SessionReject)
        assert reject.kind == FailureKind.MALFORMED.value

    def test_unsolicited_response_frames_are_ignored(self):
        from repro.fleet.verifier import AuthResponse

        async def main():
            service = provision()
            async with AuthServer(service) as server:
                reader, writer = await raw_connection(server)
                write_frame(writer, encode_message(SessionHello("spam")))
                await writer.drain()
                await server_reply(reader)               # WELCOME
                for __ in range(16):
                    write_frame(writer, encode_message(
                        AuthResponse("dev-000000", b"junk", b"tag")))
                await writer.drain()
                # Connection is still healthy: a real verb round-trips.
                write_frame(writer, encode_message(
                    SessionRequest("poll")))
                await writer.drain()
                reply = await asyncio.wait_for(read_frame(reader), 10)
                writer.close()
                return decode_message(reply)
        result = run(main())
        assert result.verb == "poll"
