"""AuthServer/AuthClient happy paths over real sockets.

Every test drives asyncio with ``asyncio.run`` inside a synchronous
test function (no asyncio pytest plugin in the environment); servers
bind an ephemeral port on loopback.
"""

import asyncio

import numpy as np
import pytest

from repro.protocols.mutual_auth import FailureKind
from repro.service import AuthService, FleetConfig
from repro.service.net import (
    AuthClient,
    AuthServer,
    NetConfig,
    RemoteAuthError,
)

FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)


def provision(n_devices=4, seed=7, **kwargs):
    return AuthService.provision(FleetConfig(
        n_devices=n_devices, seed=seed, puf=FAST_PUF, **kwargs))


def run(coro):
    return asyncio.run(coro)


class TestHandshake:
    def test_hello_welcome_negotiation(self):
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port,
                        peer="unit-test-client") as client:
                    assert client.negotiated_version == (1, 2)
                    assert client.server_peer == "repro-auth-server"
            return server.metrics
        metrics = run(main())
        assert metrics.connections_opened == 1
        assert metrics.connections_closed == 1
        assert metrics.handshakes_failed == 0

    def test_custom_server_peer_name(self):
        async def main():
            service = provision()
            config = NetConfig(peer="fleet-gateway-7")
            async with AuthServer(service, config) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    return client.server_peer
        assert run(main()) == "fleet-gateway-7"


class TestAuthVerbs:
    def test_single_authenticate_rolls_the_crp(self):
        async def main():
            service = provision()
            device = service.device_list[0]
            before = int(service.registry.record(device.device_id).sessions)
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    ticket = await client.authenticate(device)
            after = int(service.registry.record(device.device_id).sessions)
            return ticket, before, after
        ticket, before, after = run(main())
        assert ticket.done and ticket.accepted
        assert ticket.failure is None
        assert after == before + 1

    def test_submit_flush_coalesces_one_micro_round(self):
        async def main():
            service = provision(n_devices=6)
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    tickets = [await client.submit(device)
                               for device in service.device_list]
                    await client.flush()
                    for ticket in tickets:
                        await ticket.wait(10)
                    return tickets, server.metrics
        tickets, metrics = run(main())
        assert all(ticket.accepted for ticket in tickets)
        # One batched verify for six individually-arriving requests.
        assert metrics.micro_rounds == 1
        assert metrics.submitted == 6

    def test_max_batch_triggers_size_flush(self):
        async def main():
            # A huge latency budget: only the size trigger can flush.
            service = provision(n_devices=4, max_batch=2,
                                latency_budget_s=60.0)
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    tickets = [await client.submit(device)
                               for device in service.device_list]
                    for ticket in tickets:
                        await ticket.wait(10)
                    return server.metrics
        metrics = run(main())
        assert metrics.flushed_by_size == 2
        assert metrics.micro_rounds == 2

    def test_latency_budget_flushes_without_explicit_flush(self):
        async def main():
            service = provision(latency_budget_s=0.02)
            device = service.device_list[0]
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    ticket = await client.authenticate(device)
                    return ticket, server.metrics
        ticket, metrics = run(main())
        assert ticket.accepted
        assert metrics.flushed_by_deadline >= 1

    def test_duplicate_pending_device_flushes_previous_round(self):
        # Same device on two sockets: one round cannot hold it twice,
        # so the second submit flushes the first micro-round.
        async def main():
            service = provision(latency_budget_s=5.0)
            device = service.device_list[0]
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as first, \
                        AuthClient.connect("127.0.0.1",
                                           server.port) as second:
                    ticket_a = await first.submit(device)
                    ticket_b = await second.submit(device)
                    await ticket_a.wait(10)
                    await second.flush()
                    await ticket_b.wait(10)
                    return ticket_a, ticket_b, server.metrics
        ticket_a, ticket_b, metrics = run(main())
        assert metrics.flushed_by_duplicate == 1
        assert ticket_a.done and ticket_b.done
        # Both flows ran complete rounds; the rolling CRP serialized them.
        assert ticket_a.accepted and ticket_b.accepted

    def test_poll_verb_mirrors_coalescer_poll(self):
        async def main():
            service = provision(latency_budget_s=0.01)
            device = service.device_list[0]
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    assert await client.poll() is False
                    ticket = await client.submit(device)
                    await asyncio.sleep(0.03)
                    await client.poll()
                    await ticket.wait(10)
                    return ticket
        assert run(main()).accepted


class TestEnrollRevokeSpot:
    def test_wire_enrollment_then_authenticate(self):
        from repro.fleet.verifier import FleetDevice
        from repro.puf.photonic_strong import PhotonicStrongPUF

        async def main():
            service = provision()
            newcomer = FleetDevice("dev-newcomer",
                                   PhotonicStrongPUF(seed=999, **FAST_PUF))
            newcomer.provision(seed=7)
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    await client.enroll(newcomer)
                    ticket = await client.authenticate(newcomer)
            record = service.registry.record("dev-newcomer")
            return ticket, record
        ticket, record = run(main())
        assert ticket.accepted
        assert record.sessions == 1

    def test_duplicate_enrollment_rejected_with_taxonomy(self):
        async def main():
            service = provision()
            device = service.device_list[0]
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    with pytest.raises(RemoteAuthError) as excinfo:
                        await client.enroll(device)
                    return excinfo.value
        assert run(main()).kind is FailureKind.DUPLICATE_DEVICE

    def test_revoke_then_auth_fails_not_enrolled(self):
        async def main():
            service = provision()
            device = service.device_list[1]
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    await client.revoke(device.device_id)
                    ticket = await client.authenticate(device)
                    return ticket
        ticket = run(main())
        assert not ticket.accepted
        assert ticket.failure_kind == FailureKind.NOT_ENROLLED.value

    def test_spot_check_matches_in_process_draws(self):
        # The same seed/counter state must draw the same pool indices
        # whether the spot check runs in-process or over the wire.
        async def main():
            wired = provision(n_spot_crps=16)
            device = wired.device_list[0]
            async with AuthServer(wired) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    distance, accepted = await client.spot_check(device, k=4)
            return wired, distance, accepted
        wired, distance, accepted = run(main())
        local = provision(n_spot_crps=16)
        report = local.spot_check([local.device_list[0]], k=4)
        assert accepted == bool(report.accepted[0])
        assert distance == pytest.approx(float(report.fractional_hd[0]))
        # Both burned the same number of pool entries.
        assert (wired.registry.record(wired.device_list[0].device_id)
                .spot_crps_left ==
                local.registry.record(local.device_list[0].device_id)
                .spot_crps_left)

    def test_spot_pool_exhaustion_speaks_taxonomy(self):
        async def main():
            service = provision()      # n_spot_crps=0
            device = service.device_list[0]
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    with pytest.raises(RemoteAuthError) as excinfo:
                        await client.spot_check(device, k=4)
                    return excinfo.value
        assert run(main()).kind is FailureKind.POOL_EXHAUSTED


class TestGatewayRounds:
    def test_authenticate_batch_matches_in_process(self):
        async def main():
            wired = provision(n_devices=8, seed=77)
            async with AuthServer(wired) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    report = await client.authenticate_batch(
                        wired.device_list)
            return wired, report
        wired, report_wired = run(main())
        plain = provision(n_devices=8, seed=77)
        report_plain = plain.authenticate_batch()
        assert report_plain.confirmations == report_wired.confirmations
        for legacy, modern in zip(plain.device_list, wired.device_list):
            assert np.array_equal(legacy.current_response,
                                  modern.current_response)

    def test_round_state_guards(self):
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    with pytest.raises(RemoteAuthError):
                        await client.verify_round_wire([])
                    await client.open_round_wire(
                        [service.device_list[0].device_id])
                    with pytest.raises(RemoteAuthError):
                        await client.open_round_wire(
                            [service.device_list[1].device_id])
        run(main())


class TestBackpressureAndShutdown:
    def test_reads_pause_past_high_watermark(self):
        async def main():
            service = provision(n_devices=8, latency_budget_s=0.005)
            config = NetConfig(pending_high=2, pending_low=1)
            async with AuthServer(service, config) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    tickets = [await client.submit(device)
                               for device in service.device_list]
                    for ticket in tickets:
                        await ticket.wait(10)
                    return tickets, server.metrics
        tickets, metrics = run(main())
        assert all(ticket.accepted for ticket in tickets)
        assert metrics.reads_paused >= 1

    def test_write_buffer_limits_applied(self):
        async def main():
            service = provision()
            config = NetConfig(write_high_bytes=1 << 12,
                               write_low_bytes=1 << 10)
            async with AuthServer(service, config) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    ticket = await client.authenticate(
                        service.device_list[0])
                    return ticket
        assert run(main()).accepted

    def test_shutdown_drains_pending_tickets(self):
        async def main():
            # A huge budget: without drain the ticket would never flush.
            service = provision(latency_budget_s=60.0)
            device = service.device_list[0]
            server = await AuthServer(service).start()
            client = await AuthClient.connect("127.0.0.1", server.port)
            ticket = await client.submit(device)
            await asyncio.sleep(0.05)       # request lands server-side
            await server.aclose()           # drain flushes the ticket
            await ticket.wait(10)
            await client.aclose()
            return ticket, server.metrics
        ticket, metrics = run(main())
        assert metrics.drained_tickets == 1
        assert ticket.done and ticket.accepted

    def test_connection_loss_aborts_unacked_confirmation(self):
        # Die between CONFIRMATION and the finalize ack: the two-phase
        # commit must keep the verifier on the old CRP (abort), so the
        # device can retry later.
        from repro.service.codec import (
            SessionHello,
            SessionRequest,
            decode_message,
            encode_message,
            peek_header,
        )
        from repro.service.net import read_frame, write_frame

        async def main():
            service = provision()
            device = service.device_list[0]
            sessions_before = int(
                service.registry.record(device.device_id).sessions)
            async with AuthServer(service) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port)
                write_frame(writer, encode_message(SessionHello("rude")))
                await writer.drain()
                await read_frame(reader)                   # WELCOME
                write_frame(writer, encode_message(
                    SessionRequest("auth", device.device_id)))
                write_frame(writer, encode_message(
                    SessionRequest("flush")))
                await writer.drain()
                challenge = None
                while challenge is None:
                    frame = await asyncio.wait_for(read_frame(reader), 10)
                    from repro.service import WireType
                    if peek_header(frame)[2] == int(WireType.CHALLENGE):
                        challenge = decode_message(frame)
                write_frame(writer, encode_message(
                    device.respond(challenge.nonce)))
                await writer.drain()
                # Wait for the CONFIRMATION, then vanish without an ack.
                from repro.service import WireType
                while True:
                    frame = await asyncio.wait_for(read_frame(reader), 10)
                    if peek_header(frame)[2] == int(WireType.CONFIRMATION):
                        break
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.05)
                sessions_after = int(
                    service.registry.record(device.device_id).sessions)
                return sessions_before, sessions_after, server.metrics
        before, after, metrics = run(main())
        assert after == before          # aborted, not rolled
        assert metrics.acks_aborted == 1


class TestMetricsShape:
    def test_metrics_export_plain_ints(self):
        async def main():
            service = provision()
            async with AuthServer(service) as server:
                async with AuthClient.connect(
                        "127.0.0.1", server.port) as client:
                    await client.authenticate(service.device_list[0])
                return server.metrics.to_json()
        exported = run(main())
        assert all(isinstance(value, int) for value in exported.values())
        assert exported["auths_accepted"] == 1
