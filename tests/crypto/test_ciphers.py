"""Tests for SPECK, PRESENT, modes, and the Feistel permutation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.feistel import FeistelPermutation
from repro.crypto.modes import (
    AuthenticatedCipher,
    AuthenticationError,
    ctr_decrypt,
    ctr_encrypt,
)
from repro.crypto.present import Present80
from repro.crypto.speck import Speck64_128


class TestSpeck:
    def test_official_vector(self):
        # SPECK64/128 test vector from the design paper (Beaulieu et al.):
        # key = 1b1a1918 13121110 0b0a0908 03020100,
        # pt = 3b726574 7475432d, ct = 8c6fa548 454e028b.
        key = bytes.fromhex("1b1a1918131211100b0a090803020100")
        plaintext = bytes.fromhex("3b7265747475432d")
        expected = bytes.fromhex("8c6fa548454e028b")
        assert Speck64_128(key).encrypt_block(plaintext) == expected

    def test_round_trip(self):
        cipher = Speck64_128(bytes(range(16)))
        block = b"\x01\x23\x45\x67\x89\xab\xcd\xef"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_key_length_checked(self):
        with pytest.raises(ValueError):
            Speck64_128(b"short")

    def test_block_length_checked(self):
        cipher = Speck64_128(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"123")

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=16, max_size=16))
    @settings(max_examples=30)
    def test_round_trip_property(self, block, key):
        cipher = Speck64_128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_avalanche(self):
        cipher = Speck64_128(bytes(16))
        a = cipher.encrypt_block(bytes(8))
        b = cipher.encrypt_block(b"\x01" + bytes(7))
        diff = np.unpackbits(np.frombuffer(bytes(x ^ y for x, y in zip(a, b)),
                                           dtype=np.uint8))
        assert 16 <= diff.sum() <= 48  # roughly half of 64 bits


class TestPresent:
    def test_official_vector_zero(self):
        # PRESENT-80 vector: all-zero key + all-zero plaintext
        # -> 5579c1387b228445 (Bogdanov et al., CHES 2007).
        cipher = Present80(bytes(10))
        assert cipher.encrypt_block(bytes(8)) == bytes.fromhex("5579c1387b228445")

    def test_official_vector_ones(self):
        # all-one key, all-zero plaintext -> e72c46c0f5945049.
        cipher = Present80(b"\xff" * 10)
        assert cipher.encrypt_block(bytes(8)) == bytes.fromhex("e72c46c0f5945049")

    def test_round_trip(self):
        cipher = Present80(bytes(range(10)))
        block = b"\xde\xad\xbe\xef\x01\x02\x03\x04"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_key_length_checked(self):
        with pytest.raises(ValueError):
            Present80(bytes(16))

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=10, max_size=10))
    @settings(max_examples=20)
    def test_round_trip_property(self, block, key):
        cipher = Present80(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestCTR:
    def test_round_trip(self):
        cipher = Speck64_128(bytes(16))
        message = b"the quick brown fox jumps over the lazy dog"
        sealed = ctr_encrypt(cipher, b"nonce", message)
        assert ctr_decrypt(cipher, b"nonce", sealed) == message

    def test_different_nonces_differ(self):
        cipher = Speck64_128(bytes(16))
        a = ctr_encrypt(cipher, b"aaaaa", b"same message")
        b = ctr_encrypt(cipher, b"bbbbb", b"same message")
        assert a != b

    def test_nonce_length_checked(self):
        cipher = Speck64_128(bytes(16))
        with pytest.raises(ValueError):
            ctr_encrypt(cipher, b"way-too-long-nonce", b"x")

    def test_empty_message(self):
        cipher = Speck64_128(bytes(16))
        assert ctr_encrypt(cipher, b"n", b"") == b""


class TestAuthenticatedCipher:
    def test_round_trip(self):
        aead = AuthenticatedCipher(bytes(range(32)))
        sealed = aead.encrypt(b"secret payload", nonce=b"n0")
        assert aead.decrypt(sealed) == b"secret payload"

    def test_tamper_detected(self):
        aead = AuthenticatedCipher(bytes(range(32)))
        sealed = bytearray(aead.encrypt(b"secret payload", nonce=b"n0"))
        sealed[12] ^= 1
        with pytest.raises(AuthenticationError):
            aead.decrypt(bytes(sealed))

    def test_wrong_key_rejected(self):
        sealed = AuthenticatedCipher(bytes(range(32))).encrypt(b"x", nonce=b"n")
        other = AuthenticatedCipher(bytes(range(1, 33)))
        with pytest.raises(AuthenticationError):
            other.decrypt(sealed)

    def test_associated_data_bound(self):
        aead = AuthenticatedCipher(bytes(range(32)))
        sealed = aead.encrypt(b"payload", nonce=b"n", associated=b"header-A")
        with pytest.raises(AuthenticationError):
            aead.decrypt(sealed, associated=b"header-B")

    def test_key_length_checked(self):
        with pytest.raises(ValueError):
            AuthenticatedCipher(bytes(16))

    def test_present_backend(self):
        aead = AuthenticatedCipher(bytes(range(32)),
                                   cipher_factory=lambda k: Present80(k[:10]))
        sealed = aead.encrypt(b"via present", nonce=b"p")
        assert aead.decrypt(sealed) == b"via present"


class TestFeistel:
    def test_round_trip_even_width(self):
        perm = FeistelPermutation(b"key", 64)
        x = np.random.default_rng(0).integers(0, 2, 64, dtype=np.uint8)
        assert np.array_equal(perm.inverse(perm.forward(x)), x)

    def test_round_trip_odd_width(self):
        perm = FeistelPermutation(b"key", 33)
        x = np.random.default_rng(1).integers(0, 2, 33, dtype=np.uint8)
        assert np.array_equal(perm.inverse(perm.forward(x)), x)

    def test_bijective_on_small_domain(self):
        perm = FeistelPermutation(b"key", 8)
        images = set()
        for value in range(256):
            bits = np.array([(value >> i) & 1 for i in range(8)], dtype=np.uint8)
            images.add(tuple(perm.forward(bits)))
        assert len(images) == 256

    def test_key_dependence(self):
        x = np.ones(32, dtype=np.uint8)
        a = FeistelPermutation(b"key-a", 32).forward(x)
        b = FeistelPermutation(b"key-b", 32).forward(x)
        assert not np.array_equal(a, b)

    def test_scrambles_structure(self):
        perm = FeistelPermutation(b"key", 64)
        a = perm.forward(np.zeros(64, dtype=np.uint8))
        flipped = np.zeros(64, dtype=np.uint8)
        flipped[0] = 1
        b = perm.forward(flipped)
        assert np.sum(a != b) > 8  # avalanche into many positions

    def test_validation(self):
        with pytest.raises(ValueError):
            FeistelPermutation(b"k", 1)
        with pytest.raises(ValueError):
            FeistelPermutation(b"k", 8, n_rounds=1)

    @given(st.integers(2, 80), st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_round_trip_property(self, width, seed):
        perm = FeistelPermutation(b"prop", width)
        x = np.random.default_rng(seed).integers(0, 2, width, dtype=np.uint8)
        assert np.array_equal(perm.inverse(perm.forward(x)), x)
