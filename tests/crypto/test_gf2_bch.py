"""Tests for GF(2^m) arithmetic and BCH codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.bch import BCHCode, BCHDecodingError
from repro.crypto.gf2 import GF2m


class TestGF2m:
    def test_unsupported_degree(self):
        with pytest.raises(ValueError):
            GF2m(1)

    def test_exp_log_inverse_relationship(self):
        field = GF2m(4)
        for element in range(1, field.size):
            assert field.exp[field.log[element]] == element

    def test_mul_by_zero(self):
        field = GF2m(4)
        assert field.mul(0, 7) == 0
        assert field.mul(9, 0) == 0

    def test_mul_identity(self):
        field = GF2m(5)
        for element in range(field.size):
            assert field.mul(element, 1) == element

    def test_inverse(self):
        field = GF2m(6)
        for element in range(1, field.size):
            assert field.mul(element, field.inv(element)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            GF2m(4).inv(0)

    def test_range_checked(self):
        with pytest.raises(ValueError):
            GF2m(4).mul(16, 1)

    def test_pow(self):
        field = GF2m(4)
        assert field.pow(3, 0) == 1
        assert field.pow(3, 2) == field.mul(3, 3)
        assert field.mul(field.pow(5, -1), 5) == 1

    def test_alpha_order(self):
        field = GF2m(5)
        assert field.alpha_pow(field.size - 1) == 1  # alpha^(2^m - 1) = 1

    @given(st.integers(1, 15), st.integers(1, 15), st.integers(1, 15))
    @settings(max_examples=40)
    def test_mul_associative(self, a, b, c):
        field = GF2m(4)
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=40)
    def test_distributive(self, a, b, c):
        field = GF2m(4)
        assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)

    def test_poly_eval(self):
        field = GF2m(4)
        # p(x) = x^2 + 1 at x = alpha: alpha^2 + 1.
        assert field.poly_eval([1, 0, 1], field.alpha_pow(1)) == \
            field.alpha_pow(2) ^ 1

    def test_poly_mod(self):
        field = GF2m(4)
        # (x^2 + 1) mod (x + 1) = 0 over GF(2) subfield values.
        remainder = field.poly_mod([1, 0, 1], [1, 1])
        assert remainder == [0]


class TestBCHParameters:
    def test_known_code_sizes(self):
        assert (BCHCode(4, 2).n, BCHCode(4, 2).k) == (15, 7)
        assert (BCHCode(5, 3).n, BCHCode(5, 3).k) == (31, 16)
        assert (BCHCode(7, 10).n, BCHCode(7, 10).k) == (127, 64)

    def test_t_validation(self):
        with pytest.raises(ValueError):
            BCHCode(4, 0)

    def test_excessive_t_rejected(self):
        with pytest.raises(ValueError):
            BCHCode(4, 8)  # no message bits left


class TestBCHCoding:
    @pytest.fixture(scope="class")
    def code(self):
        return BCHCode(5, 3)  # (31, 16, t=3)

    def test_encode_length(self, code):
        codeword = code.encode(np.zeros(code.k, dtype=np.uint8))
        assert codeword.size == code.n

    def test_message_length_checked(self, code):
        with pytest.raises(ValueError):
            code.encode(np.zeros(code.k + 1, dtype=np.uint8))

    def test_clean_codeword_zero_syndromes(self, code):
        rng = np.random.default_rng(0)
        codeword = code.encode(rng.integers(0, 2, code.k, dtype=np.uint8))
        assert not any(code.syndromes(codeword))

    def test_decode_clean(self, code):
        rng = np.random.default_rng(1)
        message = rng.integers(0, 2, code.k, dtype=np.uint8)
        assert np.array_equal(code.decode(code.encode(message)), message)

    @pytest.mark.parametrize("n_errors", [1, 2, 3])
    def test_corrects_up_to_t_errors(self, code, n_errors):
        rng = np.random.default_rng(n_errors)
        for trial in range(5):
            message = rng.integers(0, 2, code.k, dtype=np.uint8)
            codeword = code.encode(message)
            positions = rng.choice(code.n, size=n_errors, replace=False)
            codeword[positions] ^= 1
            assert np.array_equal(code.decode(codeword), message)

    def test_systematic_property(self, code):
        rng = np.random.default_rng(2)
        message = rng.integers(0, 2, code.k, dtype=np.uint8)
        codeword = code.encode(message)
        assert np.array_equal(codeword[: code.k], message)

    def test_too_many_errors_detected_or_miscorrected(self, code):
        # Beyond t errors: the decoder either raises or returns a wrong
        # message — it must never crash with an internal error.
        rng = np.random.default_rng(3)
        message = rng.integers(0, 2, code.k, dtype=np.uint8)
        codeword = code.encode(message)
        positions = rng.choice(code.n, size=code.t + 4, replace=False)
        codeword[positions] ^= 1
        try:
            code.decode(codeword)
        except BCHDecodingError:
            pass

    def test_received_length_checked(self, code):
        with pytest.raises(ValueError):
            code.decode(np.zeros(code.n - 1, dtype=np.uint8))

    @given(st.integers(0, 2**16 - 1), st.integers(0, 30), st.integers(0, 30),
           st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_random_three_error_patterns(self, message_int, p1, p2, p3):
        code = BCHCode(5, 3)
        message = np.array([(message_int >> i) & 1 for i in range(16)],
                           dtype=np.uint8)
        codeword = code.encode(message)
        for position in {p1, p2, p3}:
            codeword[position] ^= 1
        assert np.array_equal(code.decode(codeword), message)


class TestVectorizedAgainstReference:
    """GF(2) matmul encode / table-gather syndromes vs the pure-Python
    polynomial paths: codeword-exact, syndrome-exact."""

    @pytest.mark.parametrize("m,t", [(5, 3), (7, 10), (8, 5)])
    def test_encode_codeword_exact(self, m, t):
        code = BCHCode(m, t)
        rng = np.random.default_rng(m * 100 + t)
        for __ in range(20):
            message = rng.integers(0, 2, code.k, dtype=np.uint8)
            assert np.array_equal(code.encode(message),
                                  code.encode_reference(message))

    @pytest.mark.parametrize("m,t", [(5, 3), (7, 10)])
    def test_syndromes_exact(self, m, t):
        code = BCHCode(m, t)
        rng = np.random.default_rng(m * 10 + t)
        for __ in range(20):
            word = rng.integers(0, 2, code.n, dtype=np.uint8)
            assert code.syndromes(word) == code.syndromes_reference(word)

    def test_zero_message_and_codeword(self):
        code = BCHCode(7, 10)
        zero_message = np.zeros(code.k, dtype=np.uint8)
        assert np.array_equal(code.encode(zero_message),
                              code.encode_reference(zero_message))
        assert code.syndromes(np.zeros(code.n, dtype=np.uint8)) \
            == [0] * (2 * code.t)

    def test_parity_matrix_shape_and_linearity(self):
        code = BCHCode(7, 10)
        assert code._parity_matrix.shape == (code.k, code.n_parity)
        rng = np.random.default_rng(9)
        a = rng.integers(0, 2, code.k, dtype=np.uint8)
        b = rng.integers(0, 2, code.k, dtype=np.uint8)
        # Linearity over GF(2): encode(a ^ b) == encode(a) ^ encode(b).
        assert np.array_equal(code.encode(a ^ b),
                              code.encode(a) ^ code.encode(b))

    def test_decode_uses_vectorized_chien(self):
        code = BCHCode(7, 10)
        rng = np.random.default_rng(4)
        message = rng.integers(0, 2, code.k, dtype=np.uint8)
        codeword = code.encode(message)
        positions = rng.choice(code.n, size=code.t, replace=False)
        codeword[positions] ^= 1
        assert np.array_equal(code.decode(codeword), message)
