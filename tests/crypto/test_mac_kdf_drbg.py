"""Tests for HMAC, HKDF, and HMAC-DRBG (with RFC test vectors)."""

import pytest

from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract
from repro.crypto.mac import hmac_sha256, mac, sha256, verify_mac


class TestHmac:
    def test_rfc4231_case_1(self):
        key = b"\x0b" * 20
        data = b"Hi There"
        expected = bytes.fromhex(
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )
        assert hmac_sha256(key, data) == expected

    def test_rfc4231_case_2(self):
        key = b"Jefe"
        data = b"what do ya want for nothing?"
        expected = bytes.fromhex(
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )
        assert hmac_sha256(key, data) == expected

    def test_rfc4231_long_key(self):
        # Case 6: key longer than the block size gets hashed first.
        key = b"\xaa" * 131
        data = b"Test Using Larger Than Block-Size Key - Hash Key First"
        expected = bytes.fromhex(
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        )
        assert hmac_sha256(key, data) == expected

    def test_mac_argument_order(self):
        # Paper Fig. 4 notation: MAC(data, key).
        assert mac(b"data", b"key") == hmac_sha256(b"key", b"data")

    def test_verify_accepts_valid(self):
        tag = mac(b"message", b"key")
        assert verify_mac(b"message", b"key", tag)

    def test_verify_rejects_tampered(self):
        tag = bytearray(mac(b"message", b"key"))
        tag[0] ^= 1
        assert not verify_mac(b"message", b"key", bytes(tag))

    def test_verify_rejects_wrong_length(self):
        assert not verify_mac(b"message", b"key", b"short")

    def test_sha256_known(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )


class TestHkdf:
    def test_rfc5869_case_1(self):
        ikm = b"\x0b" * 22
        salt = bytes(range(13))
        info = bytes(range(0xF0, 0xFA))
        prk = hkdf_extract(salt, ikm)
        assert prk == bytes.fromhex(
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        )
        okm = hkdf_expand(prk, info, 42)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_one_shot_matches_two_step(self):
        assert hkdf(b"ikm", 32, salt=b"salt", info=b"info") == \
            hkdf_expand(hkdf_extract(b"salt", b"ikm"), b"info", 32)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)

    def test_different_info_different_keys(self):
        assert hkdf(b"ikm", info=b"a") != hkdf(b"ikm", info=b"b")


class TestDrbg:
    def test_deterministic(self):
        a = HmacDrbg(b"seed").generate(64)
        b = HmacDrbg(b"seed").generate(64)
        assert a == b

    def test_seed_sensitivity(self):
        assert HmacDrbg(b"seed-a").generate(32) != HmacDrbg(b"seed-b").generate(32)

    def test_personalization(self):
        assert HmacDrbg(b"s", b"p1").generate(32) != HmacDrbg(b"s", b"p2").generate(32)

    def test_stream_advances(self):
        drbg = HmacDrbg(b"seed")
        assert drbg.generate(32) != drbg.generate(32)

    def test_reseed_changes_stream(self):
        a = HmacDrbg(b"seed")
        b = HmacDrbg(b"seed")
        a.reseed(b"entropy")
        assert a.generate(32) != b.generate(32)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"s").generate(-1)

    def test_randint_below_range(self):
        drbg = HmacDrbg(b"seed")
        values = [drbg.randint_below(10) for _ in range(200)]
        assert all(0 <= v < 10 for v in values)
        assert len(set(values)) == 10  # all residues hit

    def test_randint_bound_validation(self):
        with pytest.raises(ValueError):
            HmacDrbg(b"s").randint_below(0)

    def test_output_statistics(self):
        import numpy as np

        stream = np.frombuffer(HmacDrbg(b"stat").generate(16384), dtype=np.uint8)
        bits = np.unpackbits(stream)
        assert abs(bits.mean() - 0.5) < 0.02


class TestMacBatch:
    """Batched round MACs: byte-identical to per-call mac()/verify_mac()."""

    def test_mac_batch_matches_scalar(self):
        from repro.crypto.mac import mac, mac_batch
        messages = [f"msg-{i}".encode() for i in range(16)]
        keys = [f"key-{i % 4}".encode() for i in range(16)]
        assert mac_batch(messages, keys) == [
            mac(m, k) for m, k in zip(messages, keys)
        ]

    def test_verify_mac_batch_mixed(self):
        from repro.crypto.mac import mac, verify_mac_batch
        messages = [b"a", b"b", b"c"]
        keys = [b"k1", b"k2", b"k3"]
        tags = [mac(b"a", b"k1"), mac(b"WRONG", b"k2"), mac(b"c", b"k3")]
        assert verify_mac_batch(messages, keys, tags) == [True, False, True]

    def test_verify_mac_batch_truncated_tag(self):
        from repro.crypto.mac import mac, verify_mac_batch
        tag = mac(b"a", b"k")[:-1]
        assert verify_mac_batch([b"a"], [b"k"], [tag]) == [False]

    def test_empty_batch(self):
        from repro.crypto.mac import mac_batch, verify_mac_batch
        assert mac_batch([], []) == []
        assert verify_mac_batch([], [], []) == []

    def test_length_mismatch_rejected(self):
        import pytest

        from repro.crypto.mac import mac_batch, verify_mac_batch
        with pytest.raises(ValueError):
            mac_batch([b"a"], [])
        with pytest.raises(ValueError):
            verify_mac_batch([b"a"], [b"k"], [])
