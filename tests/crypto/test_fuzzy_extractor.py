"""Tests for the fuzzy extractor and the repetition/Hamming codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.fuzzy_extractor import (
    ConcatenatedCode,
    FuzzyExtractor,
    KeyRecoveryError,
)
from repro.crypto.repetition import Hamming74, RepetitionCode


class TestRepetition:
    def test_odd_required(self):
        with pytest.raises(ValueError):
            RepetitionCode(4)

    def test_round_trip(self):
        code = RepetitionCode(5)
        message = np.array([1, 0, 1, 1], dtype=np.uint8)
        assert np.array_equal(code.decode(code.encode(message)), message)

    def test_corrects_per_block_errors(self):
        code = RepetitionCode(5)
        encoded = code.encode(np.array([1, 0], dtype=np.uint8))
        encoded[0] ^= 1
        encoded[1] ^= 1  # two errors in first block, still majority 1
        encoded[7] ^= 1  # one error in second block
        assert code.decode(encoded).tolist() == [1, 0]

    def test_length_validation(self):
        with pytest.raises(ValueError):
            RepetitionCode(3).decode(np.zeros(4, dtype=np.uint8))

    def test_capability(self):
        assert RepetitionCode(7).correctable_errors_per_block() == 3


class TestHamming74:
    def test_round_trip(self):
        code = Hamming74()
        message = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        assert np.array_equal(code.decode(code.encode(message)), message)

    def test_corrects_single_error_per_block(self):
        code = Hamming74()
        message = np.array([1, 0, 1, 1], dtype=np.uint8)
        encoded = code.encode(message)
        for position in range(7):
            corrupted = encoded.copy()
            corrupted[position] ^= 1
            assert np.array_equal(code.decode(corrupted), message), position

    def test_length_validation(self):
        with pytest.raises(ValueError):
            Hamming74().encode(np.zeros(5, dtype=np.uint8))
        with pytest.raises(ValueError):
            Hamming74().decode(np.zeros(8, dtype=np.uint8))

    @given(st.integers(0, 15))
    @settings(max_examples=16)
    def test_all_messages_round_trip(self, value):
        code = Hamming74()
        message = np.array([(value >> i) & 1 for i in range(4)], dtype=np.uint8)
        assert np.array_equal(code.decode(code.encode(message)), message)


class TestConcatenatedCode:
    def test_dimensions(self):
        code = ConcatenatedCode(bch_m=5, bch_t=3, repetition=3)
        assert code.k == 16
        assert code.n == 31 * 3

    def test_heavy_noise_round_trip(self):
        code = ConcatenatedCode(bch_m=5, bch_t=3, repetition=3)
        rng = np.random.default_rng(0)
        message = rng.integers(0, 2, code.k, dtype=np.uint8)
        encoded = code.encode(message)
        # Flip 8% of bits: repetition crushes most, BCH mops up the rest.
        noise = rng.random(code.n) < 0.08
        received = encoded ^ noise.astype(np.uint8)
        assert np.array_equal(code.decode(received), message)


class TestFuzzyExtractor:
    @pytest.fixture(scope="class")
    def extractor(self):
        return FuzzyExtractor(ConcatenatedCode(bch_m=5, bch_t=3, repetition=3))

    def test_clean_reproduction(self, extractor):
        rng = np.random.default_rng(1)
        response = rng.integers(0, 2, extractor.response_bits, dtype=np.uint8)
        result = extractor.generate(response)
        assert extractor.reproduce(response, result.helper) == result.key

    def test_noisy_reproduction(self, extractor):
        rng = np.random.default_rng(2)
        response = rng.integers(0, 2, extractor.response_bits, dtype=np.uint8)
        result = extractor.generate(response)
        noisy = response ^ (rng.random(response.size) < 0.05).astype(np.uint8)
        assert extractor.reproduce(noisy, result.helper) == result.key

    def test_excessive_noise_fails_or_differs(self, extractor):
        rng = np.random.default_rng(3)
        response = rng.integers(0, 2, extractor.response_bits, dtype=np.uint8)
        result = extractor.generate(response)
        garbage = rng.integers(0, 2, response.size, dtype=np.uint8)
        try:
            key = extractor.reproduce(garbage, result.helper)
            assert key != result.key
        except KeyRecoveryError:
            pass

    def test_different_responses_different_keys(self, extractor):
        rng = np.random.default_rng(4)
        r1 = rng.integers(0, 2, extractor.response_bits, dtype=np.uint8)
        r2 = rng.integers(0, 2, extractor.response_bits, dtype=np.uint8)
        k1 = extractor.generate(r1, enrollment_id=0).key
        k2 = extractor.generate(r2, enrollment_id=1).key
        assert k1 != k2

    def test_helper_data_is_not_the_key(self, extractor):
        rng = np.random.default_rng(5)
        response = rng.integers(0, 2, extractor.response_bits, dtype=np.uint8)
        result = extractor.generate(response)
        # Helper data alone (without the response) must not reproduce the key.
        wrong = np.zeros(extractor.response_bits, dtype=np.uint8)
        try:
            key = extractor.reproduce(wrong, result.helper)
            assert key != result.key
        except KeyRecoveryError:
            pass

    def test_length_validation(self, extractor):
        with pytest.raises(ValueError):
            extractor.generate(np.zeros(10, dtype=np.uint8))

    def test_key_length_parameter(self):
        extractor = FuzzyExtractor(
            ConcatenatedCode(bch_m=5, bch_t=3, repetition=3), key_length=32
        )
        rng = np.random.default_rng(6)
        response = rng.integers(0, 2, extractor.response_bits, dtype=np.uint8)
        assert len(extractor.generate(response).key) == 32

    def test_error_rate_sweep_monotonic(self, extractor):
        # Failure probability grows with the injected bit-error rate.
        rng = np.random.default_rng(7)
        response = rng.integers(0, 2, extractor.response_bits, dtype=np.uint8)
        result = extractor.generate(response)
        failures = []
        for error_rate in (0.02, 0.25):
            fail = 0
            for trial in range(20):
                noisy = response ^ (rng.random(response.size) < error_rate
                                    ).astype(np.uint8)
                try:
                    if extractor.reproduce(noisy, result.helper) != result.key:
                        fail += 1
                except KeyRecoveryError:
                    fail += 1
            failures.append(fail)
        assert failures[0] < failures[1]
