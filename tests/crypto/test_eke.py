"""Tests for the EKE password-authenticated key exchange."""

import pytest

from repro.crypto.eke import (
    EkeError,
    EkeInitiator,
    EkeResponder,
    run_handshake,
)


class TestHandshake:
    def test_matching_passwords_agree(self):
        initiator, responder = run_handshake(b"crp-secret", b"crp-secret", seed=1)
        assert initiator.session_key == responder.session_key

    def test_wrong_password_fails(self):
        with pytest.raises(EkeError):
            run_handshake(b"crp-secret", b"wrong-guess", seed=2)

    def test_forward_secrecy_fresh_keys(self):
        # Same password, two sessions: different ephemeral exponents must
        # give different session keys.
        a1, _ = run_handshake(b"pw", b"pw", seed=3, session_id=0)
        a2, _ = run_handshake(b"pw", b"pw", seed=3, session_id=1)
        assert a1.session_key != a2.session_key

    def test_session_key_unavailable_before_completion(self):
        initiator = EkeInitiator(b"pw", seed=4)
        with pytest.raises(EkeError):
            __ = initiator.session_key

    def test_tampered_message_2_rejected(self):
        initiator = EkeInitiator(b"pw", seed=5)
        responder = EkeResponder(b"pw", seed=5)
        msg2 = bytearray(responder.process_message_1(initiator.message_1()))
        msg2[20] ^= 1
        with pytest.raises(EkeError):
            initiator.process_message_2(bytes(msg2))

    def test_tampered_confirmation_rejected(self):
        initiator = EkeInitiator(b"pw", seed=6)
        responder = EkeResponder(b"pw", seed=6)
        msg2 = responder.process_message_1(initiator.message_1())
        msg3 = bytearray(initiator.process_message_2(msg2))
        msg3[0] ^= 1
        with pytest.raises(EkeError):
            responder.process_message_3(bytes(msg3))

    def test_out_of_order_confirmation_rejected(self):
        responder = EkeResponder(b"pw", seed=7)
        with pytest.raises(EkeError):
            responder.process_message_3(b"\x00" * 32)

    def test_cost_accounting(self):
        initiator, responder = run_handshake(b"pw", b"pw", seed=8)
        # DH costs: 2 modexp each side, 3 messages total.
        assert initiator.cost.modexp_count == 2
        assert responder.cost.modexp_count == 2
        assert initiator.cost.messages + responder.cost.messages == 3
        assert initiator.cost.bytes_sent > 0
