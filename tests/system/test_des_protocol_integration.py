"""DES-driven protocol scheduling: the Sec. V system-modeling story.

Uses the discrete-event kernel to schedule periodic authentication
sessions and attestation rounds against the SoC, collecting the
gem5-style statistics the paper says the simulator must provide
(event logs, counters, latency accumulation).
"""

import pytest

from repro.protocols import (
    AttestationDevice,
    AttestationVerifier,
    provision,
    run_session,
)
from repro.system.des import Simulator
from repro.system.soc import DeviceSoC, SoCConfig


class TestScheduledSecurityServices:
    def test_periodic_authentication_schedule(self):
        soc = DeviceSoC(SoCConfig(seed=500, memory_size=8 * 1024))
        device, verifier = provision(soc, seed=500)
        sim = Simulator()
        outcomes = []

        def session(round_index):
            record = run_session(device, verifier)
            outcomes.append(record.success)
            sim.log.count("auth.sessions")
            sim.log.accumulate("auth.device_seconds", record.device_time_s)
            sim.log.record(sim.now, "auth", f"round {round_index}")
            if round_index + 1 < 5:
                sim.schedule(3600.0, session, round_index + 1)

        sim.schedule(0.0, session, 0)
        sim.run()
        assert outcomes == [True] * 5
        assert sim.log.counters["auth.sessions"] == 5
        assert sim.now == pytest.approx(4 * 3600.0)
        assert len(sim.log.trace) == 5

    def test_interleaved_auth_and_attestation(self):
        soc = DeviceSoC(SoCConfig(seed=501, memory_size=8 * 1024))
        device, verifier = provision(soc, seed=501)
        att_verifier = AttestationVerifier(
            soc.memory.image(), soc.strong_puf,
            chunk_size=soc.memory.chunk_size, soc_model=soc,
        )
        sim = Simulator()
        results = {"auth": 0, "attest": 0}

        def auth_round():
            if run_session(device, verifier).success:
                results["auth"] += 1

        def attest_round(stamp):
            request = att_verifier.new_request(timestamp=stamp)
            report = AttestationDevice(soc).attest(request)
            if att_verifier.verify(request, report).accepted:
                results["attest"] += 1

        for index in range(3):
            sim.schedule(10.0 * index, auth_round)
            sim.schedule(10.0 * index + 5.0, attest_round, index)
        sim.run()
        assert results == {"auth": 3, "attest": 3}
        # The peripheral's stats accumulated across both services.
        assert soc.log.counters["puf.evaluations"] >= 3

    def test_stats_dump_renders(self):
        sim = Simulator()
        sim.log.count("events", 3)
        sim.log.accumulate("latency", 1.5)
        dump = sim.log.dump()
        assert "events" in dump and "latency" in dump
