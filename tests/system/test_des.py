"""Tests for the discrete-event kernel and event log."""

import pytest

from repro.system.des import EventLog, Simulator


class TestSimulator:
    def test_events_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_tie_breaking(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "first")
        sim.schedule(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["early", "late"]

    def test_events_scheduling_events(self):
        sim = Simulator()
        times = []

        def recurring(remaining):
            times.append(sim.now)
            if remaining:
                sim.schedule(1.0, recurring, remaining - 1)

        sim.schedule(0.5, recurring, 3)
        sim.run()
        assert times == [0.5, 1.5, 2.5, 3.5]

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step()
        assert fired == [1]
        assert sim.step()
        assert not sim.step()

    def test_pending_count(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        event.cancel()
        assert sim.pending == 1


class TestEventLog:
    def test_counters(self):
        log = EventLog()
        log.count("x")
        log.count("x", 4)
        assert log.counters["x"] == 5

    def test_accumulators(self):
        log = EventLog()
        log.accumulate("latency", 0.5)
        log.accumulate("latency", 0.25)
        assert log.accumulators["latency"] == pytest.approx(0.75)

    def test_trace_and_dump(self):
        log = EventLog()
        log.record(1.0, "puf", "evaluation done")
        log.count("events")
        report = log.dump()
        assert "events" in report
        assert len(log.trace) == 1
