"""Tests for memory, CPU, peripheral, power, channel, and the full SoC."""

import numpy as np
import pytest

from repro.puf import ArbiterPUF
from repro.system.channel import Channel
from repro.system.cpu import ClockCounter, ProcessorModel
from repro.system.memory import DeviceMemory, RelocatingCompromisedMemory
from repro.system.peripheral import STATUS_DONE, STATUS_IDLE, PUFPeripheral
from repro.system.power import PowerProfile, PowerTracker
from repro.system.soc import DeviceSoC, SoCConfig


class TestMemory:
    def test_deterministic_contents(self):
        a = DeviceMemory(4096, seed=1)
        b = DeviceMemory(4096, seed=1)
        assert a.image() == b.image()

    def test_chunk_reads(self):
        memory = DeviceMemory(4096, chunk_size=256, seed=2)
        assert memory.n_chunks == 16
        assert memory.read_chunk(3) == memory.image()[768:1024]
        with pytest.raises(ValueError):
            memory.read_chunk(16)

    def test_infection_changes_contents(self):
        memory = DeviceMemory(4096, seed=3)
        clean = memory.image()
        memory.infect(address=0, length=512)
        assert memory.image() != clean

    def test_write_bounds(self):
        memory = DeviceMemory(1024, chunk_size=256)
        with pytest.raises(ValueError):
            memory.write(1020, b"too long")

    def test_relocating_memory_hides_malware_but_pays_time(self):
        clean = DeviceMemory(4096, seed=4)
        compromised = RelocatingCompromisedMemory(
            clean.image(), chunk_size=256, infected_chunks={0, 1}
        )
        # Hashes match the clean image...
        assert compromised.read_chunk(0) == clean.read_chunk(0)
        # ...but infected chunks cost extra time.
        assert compromised.chunk_read_time_for(0) > compromised.chunk_read_time_for(5)


class TestProcessor:
    def test_time_scaling(self):
        cpu = ProcessorModel(frequency_hz=100e6)
        assert cpu.hash_time(2048) > cpu.hash_time(256)
        assert cpu.mac_time(64) > 0
        assert cpu.cipher_time(64) == pytest.approx(
            cpu.cycles_per_cipher_block * 8 / 100e6
        )

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            ProcessorModel().seconds(-1)

    def test_clock_counter_detects_tampering(self):
        counter = ClockCounter(ProcessorModel())
        honest = counter.measure()
        tampered = counter.measure(tamper_factor=1.3)
        assert tampered > honest


class TestPeripheral:
    def test_full_driver_sequence(self):
        puf = ArbiterPUF(n_stages=64, seed=1)
        peripheral = PUFPeripheral(puf)
        challenge = np.random.default_rng(0).integers(0, 2, 64, dtype=np.uint8)
        response, elapsed = peripheral.evaluate(challenge)
        assert response.size == 1
        assert elapsed > 0
        assert peripheral.log.counters["puf.evaluations"] == 1

    def test_status_transitions(self):
        puf = ArbiterPUF(n_stages=64, seed=2)
        peripheral = PUFPeripheral(puf)
        assert peripheral.status() == STATUS_IDLE
        peripheral.write_challenge(bytes(8))
        peripheral.start()
        assert peripheral.status() == STATUS_DONE
        peripheral.read_response()
        assert peripheral.status() == STATUS_IDLE

    def test_read_before_done_rejected(self):
        peripheral = PUFPeripheral(ArbiterPUF(n_stages=64, seed=3))
        with pytest.raises(RuntimeError):
            peripheral.read_response()

    def test_challenge_width_checked(self):
        peripheral = PUFPeripheral(ArbiterPUF(n_stages=64, seed=4))
        with pytest.raises(ValueError):
            peripheral.write_challenge(bytes(4))


class TestPower:
    def test_energy_accounting(self):
        tracker = PowerTracker({"cpu": PowerProfile(idle_w=0.01, active_w=0.1)})
        tracker.record_active("cpu", 2.0)
        tracker.close(10.0)
        # 2 s active at 0.1 W + 8 s idle at 0.01 W.
        assert tracker.energy_joules("cpu") == pytest.approx(0.28)
        assert tracker.average_power_w() == pytest.approx(0.028)

    def test_validation(self):
        tracker = PowerTracker()
        with pytest.raises(KeyError):
            tracker.record_active("gpu", 1.0)
        with pytest.raises(ValueError):
            tracker.record_active("cpu", -1.0)
        with pytest.raises(ValueError):
            PowerProfile(idle_w=0.5, active_w=0.1)


class TestChannel:
    def test_latency_and_stats(self):
        channel = Channel(base_latency_s=1e-3, jitter_s=0.0,
                          bandwidth_bytes_per_s=1e6)
        delivered, latency = channel.send(b"x" * 1000)
        assert delivered == b"x" * 1000
        assert latency == pytest.approx(2e-3)
        assert channel.stats.messages == 1
        assert channel.stats.bytes_carried == 1000

    def test_eavesdropper_sees_messages(self):
        channel = Channel()
        seen = []
        channel.eavesdropper = seen.append
        channel.send(b"secret")
        assert seen == [b"secret"]

    def test_tamper_hook(self):
        channel = Channel()
        channel.tamper = lambda m: m + b"!"
        delivered, __ = channel.send(b"msg")
        assert delivered == b"msg!"

    def test_transcript_records_originals(self):
        channel = Channel()
        channel.tamper = lambda m: b"evil"
        channel.send(b"original")
        assert channel.transcript == [b"original"]


class TestDeviceSoC:
    @pytest.fixture(scope="class")
    def soc(self):
        return DeviceSoC(SoCConfig(seed=7, memory_size=16 * 1024))

    def test_strong_puf_via_peripheral(self, soc):
        challenge = np.random.default_rng(1).integers(0, 2, 64, dtype=np.uint8)
        response, elapsed = soc.strong_puf_evaluate(challenge)
        assert response.size == soc.strong_puf.response_bits
        assert elapsed > 0

    def test_weak_puf_read(self, soc):
        bits, elapsed = soc.weak_puf_read(measurement=0)
        assert bits.size == soc.weak_puf.n_addresses
        assert elapsed > 0

    def test_firmware_hash_deterministic(self, soc):
        h1, t1 = soc.firmware_hash()
        h2, __ = soc.firmware_hash()
        assert h1 == h2
        assert t1 > 0

    def test_clock_count_measure(self, soc):
        assert soc.measure_clock_count() > 0

    def test_power_report(self, soc):
        report = soc.power_report()
        assert report["cpu"] > 0
        assert set(report) == set(soc.power.profiles)
