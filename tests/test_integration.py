"""Cross-module integration tests: the full NEUROPULS stack end to end.

Each test exercises a complete Fig. 1 flow across several subpackages,
including the failure paths a unit test cannot reach: counterfeit
devices, drifted environments, desynchronised sessions, corrupted helper
data.
"""

import numpy as np
import pytest

from repro.accelerator.network import LayerConfig, NetworkConfig
from repro.crypto.fuzzy_extractor import KeyRecoveryError
from repro.protocols import (
    AttestationDevice,
    AttestationVerifier,
    KeyVault,
    NetworkOwner,
    SecureAccelerator,
    ServiceError,
    establish_session,
    provision,
    run_session,
)
from repro.puf import PUFEnvironment
from repro.system.channel import Channel
from repro.system.soc import DeviceSoC, SoCConfig


@pytest.fixture()
def soc():
    return DeviceSoC(SoCConfig(seed=400, memory_size=8 * 1024))


class TestFullLifecycle:
    def test_provision_authenticate_attest_infer(self, soc):
        # 1. Authentication.
        device, verifier = provision(soc, seed=400)
        assert run_session(device, verifier).success
        # 2. Attestation.
        att_verifier = AttestationVerifier(
            soc.memory.image(), soc.strong_puf,
            chunk_size=soc.memory.chunk_size, soc_model=soc,
        )
        request = att_verifier.new_request(timestamp=1)
        verdict = att_verifier.verify(request,
                                      AttestationDevice(soc).attest(request))
        assert verdict.accepted
        # 3. Encrypted inference with the weak-PUF-derived key.
        vault = KeyVault(soc, seed=400)
        secure = SecureAccelerator(soc, vault)
        owner = NetworkOwner(vault)
        rng = np.random.default_rng(0)
        network = NetworkConfig(layers=[
            LayerConfig(rng.normal(size=(4, 3)), rng.normal(size=4), "relu"),
            LayerConfig(rng.normal(size=(2, 4)), rng.normal(size=2), "linear"),
        ])
        secure.load_network(owner.seal_network(network))
        output = owner.open_output(
            secure.execute_network(owner.seal_input(np.array([0.1, 0.2, 0.3])))
        )
        assert output.shape == (2,)
        # 4. Session keys over the rolled CRP.
        session = establish_session(device.current_response, soc, seed=400)
        assert len(session.session_key) == 32

    def test_counterfeit_device_fails_everything(self, soc):
        genuine_device, verifier = provision(soc, seed=401)
        counterfeit = DeviceSoC(SoCConfig(seed=400, die_index=7,
                                          memory_size=8 * 1024))
        # Counterfeit takes over the genuine device's network position but
        # cannot produce the rolled CRP.
        from repro.protocols.mutual_auth import AuthDevice

        impostor = AuthDevice(counterfeit,
                              counterfeit.strong_puf.evaluate(
                                  np.zeros(64, dtype=np.uint8), measurement=0),
                              seed=401)
        record = run_session(impostor, verifier)
        assert not record.success

    def test_environment_drift_tolerated_by_stack(self, soc):
        # A hot but stabilised device still authenticates: the CRP is
        # stored, and fresh PUF evaluations only seed the *next* session.
        device, verifier = provision(soc, seed=402)
        hot = PUFEnvironment(temperature_c=45.0)
        soc.strong_peripheral.set_environment(hot)
        results = [run_session(device, verifier).success for __ in range(4)]
        assert all(results)


class TestKeyLifecycle:
    def test_key_rederivation_across_temperature(self, soc):
        vault = KeyVault(soc, seed=403)
        # Re-derive at several noisy measurements; ECC absorbs the noise.
        assert vault.rederive_key(measurement=7)
        assert vault.rederive_key(measurement=13)

    def test_corrupted_helper_data_fails_safe(self, soc):
        vault = KeyVault(soc, seed=404)
        vault.helper.offset[: vault.helper.offset.size // 2] ^= 1
        noisy = vault._measure_response(measurement=5)
        with pytest.raises(KeyRecoveryError):
            vault.extractor.reproduce(noisy, vault.helper)

    def test_wrong_device_cannot_reproduce_key(self):
        device_a = DeviceSoC(SoCConfig(seed=405, die_index=0,
                                       memory_size=8 * 1024))
        device_b = DeviceSoC(SoCConfig(seed=405, die_index=1,
                                       memory_size=8 * 1024))
        vault_a = KeyVault(device_a, seed=405)
        vault_b = KeyVault(device_b, seed=405)
        # B's response + A's helper data must not give A's key: either
        # decoding fails outright, or the derived key cannot open A's
        # ciphertexts.
        response_b = vault_b._measure_response(measurement=3)
        sealed = vault_a.cipher().encrypt(b"probe", nonce=b"n")
        try:
            key = vault_a.extractor.reproduce(response_b, vault_a.helper)
        except KeyRecoveryError:
            return  # fail-safe path
        from repro.crypto.modes import AuthenticatedCipher, AuthenticationError

        with pytest.raises(AuthenticationError):
            AuthenticatedCipher(key).decrypt(sealed)


class TestServiceUnderAdversity:
    def test_noisy_channel_sessions_recover(self, soc):
        device, verifier = provision(soc, seed=406)
        channel = Channel(seed=406)
        flip_next = {"armed": True}

        def sometimes_tamper(message: bytes) -> bytes:
            if flip_next["armed"] and len(message) > 60:
                flip_next["armed"] = False
                corrupted = bytearray(message)
                corrupted[30] ^= 1
                return bytes(corrupted)
            return message

        channel.tamper = sometimes_tamper
        first = run_session(device, verifier, channel=channel)
        assert not first.success  # the tampered session dies...
        second = run_session(device, verifier, channel=channel)
        assert second.success  # ...and the parties recover.

    def test_attestation_after_firmware_update(self, soc):
        # A legitimate update changes memory; the verifier must be given
        # the new image, after which attestation succeeds again.
        verifier_old = AttestationVerifier(
            soc.memory.image(), soc.strong_puf,
            chunk_size=soc.memory.chunk_size, soc_model=soc,
        )
        soc.memory.write(0, b"\x42" * 128)  # the update
        request = verifier_old.new_request(timestamp=9)
        report = AttestationDevice(soc).attest(request)
        assert not verifier_old.verify(request, report).accepted
        verifier_new = AttestationVerifier(
            soc.memory.image(), soc.strong_puf,
            chunk_size=soc.memory.chunk_size, soc_model=soc,
        )
        request2 = verifier_new.new_request(timestamp=10)
        report2 = AttestationDevice(soc).attest(request2)
        assert verifier_new.verify(request2, report2).accepted

    def test_replayed_nn_ciphertext_is_valid_but_stateless(self, soc):
        # CTR+MAC accepts a replayed input ciphertext (no anti-replay at
        # this layer by design); the output is simply recomputed.  This
        # documents the layer boundary: replay protection lives in the
        # session protocol above.
        vault = KeyVault(soc, seed=407)
        secure = SecureAccelerator(soc, vault)
        owner = NetworkOwner(vault)
        rng = np.random.default_rng(1)
        secure.load_network(owner.seal_network(NetworkConfig(layers=[
            LayerConfig(rng.normal(size=(2, 2)), rng.normal(size=2), "linear"),
        ])))
        sealed = owner.seal_input(np.array([0.3, 0.7]))
        out1 = owner.open_output(secure.execute_network(sealed))
        out2 = owner.open_output(secure.execute_network(sealed))
        assert np.allclose(out1, out2)


class TestPowerAndTiming:
    def test_power_report_covers_session_activity(self, soc):
        device, verifier = provision(soc, seed=408)
        run_session(device, verifier)
        report = soc.power_report()
        assert report["cpu"] > 0
        assert report["puf_pic"] > 0

    def test_event_log_accumulates_puf_activity(self, soc):
        device, verifier = provision(soc, seed=409)
        before = soc.log.counters.get("puf.evaluations", 0)
        run_session(device, verifier)
        assert soc.log.counters["puf.evaluations"] > before
