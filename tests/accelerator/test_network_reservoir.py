"""Tests for the neuromorphic network and the photonic reservoir."""

import numpy as np
import pytest

from repro.accelerator.network import (
    LayerConfig,
    NetworkConfig,
    NeuromorphicAccelerator,
    reference_forward,
)
from repro.accelerator.pcm import PCMModel
from repro.accelerator.reservoir import PhotonicReservoir, narma10


def small_network(seed=0):
    rng = np.random.default_rng(seed)
    return NetworkConfig(layers=[
        LayerConfig(rng.normal(size=(8, 4)), rng.normal(size=8), "relu"),
        LayerConfig(rng.normal(size=(3, 8)), rng.normal(size=3), "linear"),
    ])


class TestNetworkConfig:
    def test_serialize_round_trip(self):
        config = small_network()
        rebuilt = NetworkConfig.deserialize(config.serialize())
        for a, b in zip(config.layers, rebuilt.layers):
            assert np.allclose(a.weights, b.weights)
            assert np.allclose(a.bias, b.bias)
            assert a.activation == b.activation

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig.deserialize(b"\xff\x00 not json")

    def test_dims(self):
        config = small_network()
        assert config.input_dim == 4
        assert config.output_dim == 3

    def test_layer_validation(self):
        with pytest.raises(ValueError):
            LayerConfig(np.zeros((2, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            LayerConfig(np.zeros((2, 2)), np.zeros(2), "gelu")
        with pytest.raises(ValueError):
            LayerConfig(np.zeros(4), np.zeros(4))


class TestAccelerator:
    def test_requires_load(self):
        accelerator = NeuromorphicAccelerator()
        with pytest.raises(RuntimeError):
            accelerator.infer(np.zeros(4))

    def test_near_ideal_matches_reference(self):
        config = small_network(1)
        accelerator = NeuromorphicAccelerator(
            mesh_imperfection_sigma=0.0,
            pcm_model=PCMModel(n_levels=4096, sigma_program=0.0,
                               t_min=0.0, t_max=1.0),
        )
        accelerator.load(config)
        x = np.array([0.5, -0.2, 0.8, 0.1])
        photonic = accelerator.infer(x)
        digital = reference_forward(config, x)
        assert np.allclose(photonic, digital, atol=1e-2)

    def test_hardware_effects_add_error(self):
        config = small_network(2)
        ideal = NeuromorphicAccelerator(
            mesh_imperfection_sigma=0.0,
            pcm_model=PCMModel(n_levels=4096, sigma_program=0.0,
                               t_min=0.0, t_max=1.0),
        )
        rough = NeuromorphicAccelerator(
            mesh_imperfection_sigma=0.05,
            pcm_model=PCMModel(n_levels=8, sigma_program=0.05),
        )
        ideal.load(config)
        rough.load(config)
        x = np.array([0.5, -0.2, 0.8, 0.1])
        reference = reference_forward(config, x)
        err_ideal = np.linalg.norm(ideal.infer(x) - reference)
        err_rough = np.linalg.norm(rough.infer(x) - reference)
        assert err_rough > err_ideal

    def test_drift_changes_output(self):
        config = small_network(3)
        accelerator = NeuromorphicAccelerator(seed=3)
        accelerator.load(config)
        x = np.array([0.5, -0.2, 0.8, 0.1])
        fresh = accelerator.infer(x)
        accelerator.age(3600.0 * 24 * 365)
        aged = accelerator.infer(x)
        assert not np.allclose(fresh, aged)

    def test_age_validation(self):
        accelerator = NeuromorphicAccelerator()
        with pytest.raises(ValueError):
            accelerator.age(-1.0)

    def test_batch_inference(self):
        accelerator = NeuromorphicAccelerator(seed=4)
        accelerator.load(small_network(4))
        outputs = accelerator.infer_batch(np.zeros((5, 4)))
        assert outputs.shape == (5, 3)

    def test_mzi_count(self):
        accelerator = NeuromorphicAccelerator(seed=5)
        accelerator.load(small_network(5))
        assert accelerator.n_mzis() > 0


class TestReservoir:
    def test_validation(self):
        with pytest.raises(ValueError):
            PhotonicReservoir(spectral_radius=1.2)
        with pytest.raises(ValueError):
            PhotonicReservoir(leak=0.0)

    def test_echo_state_fading_memory(self):
        # Two different initial sequences converge once inputs coincide.
        reservoir = PhotonicReservoir(n_nodes=32, seed=1)
        rng = np.random.default_rng(0)
        tail = rng.uniform(0, 0.5, 200)
        a = np.concatenate([np.zeros(50), tail])
        b = np.concatenate([np.ones(50), tail])
        state_a = reservoir.run(a, washout=0)[-1]
        state_b = reservoir.run(b, washout=0)[-1]
        assert np.linalg.norm(state_a - state_b) < 1e-3

    def test_learns_narma10(self):
        u, y = narma10(1200, seed=2)
        reservoir = PhotonicReservoir(n_nodes=80, seed=2)
        train_error = reservoir.fit_readout(u[:800], y[:800], washout=50)
        test_error = reservoir.score(u[800:], y[800:], washout=50)
        assert train_error < 0.6
        assert test_error < 0.8  # clearly better than predicting the mean

    def test_predict_requires_fit(self):
        with pytest.raises(RuntimeError):
            PhotonicReservoir().predict(np.zeros(100))

    def test_washout_validation(self):
        with pytest.raises(ValueError):
            PhotonicReservoir().run(np.zeros(5), washout=10)
