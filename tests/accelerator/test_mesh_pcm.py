"""Tests for the MZI mesh decomposition and PCM weight cells."""

import numpy as np
import pytest
from scipy.stats import ortho_group

from repro.accelerator.mesh import PhotonicMatrixUnit, reck_compose, reck_decompose
from repro.accelerator.pcm import PCMCellArray, PCMModel


def random_unitary(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
    q, r = np.linalg.qr(a)
    return q * (np.diag(r) / np.abs(np.diag(r)))


class TestReck:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_decompose_compose_round_trip(self, n):
        u = random_unitary(n, n)
        rotations, diagonal = reck_decompose(u)
        rebuilt = reck_compose(rotations, diagonal)
        assert np.allclose(rebuilt, u, atol=1e-9)

    def test_rotation_count(self):
        u = random_unitary(6, 1)
        rotations, __ = reck_decompose(u)
        assert len(rotations) <= 6 * 5 // 2  # N(N-1)/2 MZIs max

    def test_identity_needs_no_rotations(self):
        rotations, diagonal = reck_decompose(np.eye(4, dtype=complex))
        assert len(rotations) == 0
        assert np.allclose(diagonal, 1.0)

    def test_non_unitary_rejected(self):
        with pytest.raises(ValueError):
            reck_decompose(np.ones((3, 3)))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            reck_decompose(np.zeros((2, 3)))

    def test_imperfection_perturbs(self):
        u = random_unitary(4, 2)
        rotations, diagonal = reck_decompose(u)
        perturbed = reck_compose(rotations, diagonal, imperfection_sigma=0.05)
        assert not np.allclose(perturbed, u, atol=1e-6)
        # Still close-ish: small phase errors.
        assert np.linalg.norm(perturbed - u) < 1.0

    def test_real_orthogonal_works(self):
        q = ortho_group.rvs(5, random_state=3).astype(complex)
        rotations, diagonal = reck_decompose(q)
        assert np.allclose(reck_compose(rotations, diagonal), q, atol=1e-9)


class TestPhotonicMatrixUnit:
    def test_exact_multiplication_when_ideal(self):
        rng = np.random.default_rng(4)
        w = rng.normal(size=(5, 7))
        unit = PhotonicMatrixUnit(w, imperfection_sigma=0.0)
        x = rng.normal(size=7)
        assert np.allclose(unit.apply(x), w @ x, atol=1e-9)

    def test_tall_matrix(self):
        rng = np.random.default_rng(5)
        w = rng.normal(size=(8, 3))
        unit = PhotonicMatrixUnit(w, imperfection_sigma=0.0)
        x = rng.normal(size=3)
        assert np.allclose(unit.apply(x), w @ x, atol=1e-9)

    def test_imperfection_bounded_error(self):
        rng = np.random.default_rng(6)
        w = rng.normal(size=(6, 6))
        unit = PhotonicMatrixUnit(w, imperfection_sigma=0.01, seed=1)
        x = rng.normal(size=6)
        exact = w @ x
        approximate = unit.apply(x)
        relative = np.linalg.norm(approximate - exact) / np.linalg.norm(exact)
        assert 0.0 < relative < 0.2

    def test_detection_noise(self):
        w = np.eye(4)
        unit = PhotonicMatrixUnit(w, imperfection_sigma=0.0)
        x = np.ones(4)
        noisy = unit.apply(x, noise_sigma=0.1, rng=np.random.default_rng(0))
        assert not np.allclose(noisy, x)

    def test_dimension_check(self):
        unit = PhotonicMatrixUnit(np.eye(3))
        with pytest.raises(ValueError):
            unit.apply(np.ones(4))

    def test_mzi_count_positive(self):
        unit = PhotonicMatrixUnit(np.random.default_rng(7).normal(size=(4, 4)))
        assert unit.n_mzis > 0

    def test_vector_validation(self):
        with pytest.raises(ValueError):
            PhotonicMatrixUnit(np.ones(3))


class TestPCM:
    def test_level_transmission_range(self):
        model = PCMModel(n_levels=8)
        assert model.level_transmission(0) == pytest.approx(model.t_min)
        assert model.level_transmission(7) == pytest.approx(model.t_max)
        with pytest.raises(ValueError):
            model.level_transmission(8)

    def test_program_and_read(self):
        array = PCMCellArray((4, 4), PCMModel(sigma_program=0.0), seed=1)
        levels = np.arange(16).reshape(4, 4) % 16
        array.program_levels(levels)
        transmissions = array.transmissions()
        assert transmissions.shape == (4, 4)
        assert np.all(transmissions >= 0.0)
        assert np.all(transmissions <= 1.0)
        # Higher level -> higher transmission (amorphous).
        flat = transmissions.ravel()
        assert flat[np.argmax(levels.ravel())] > flat[np.argmin(levels.ravel())]

    def test_write_noise(self):
        model = PCMModel(sigma_program=0.05)
        a = PCMCellArray((8, 8), model, seed=2)
        levels = np.full((8, 8), 8, dtype=np.int64)
        a.program_levels(levels)
        values = a.transmissions()
        assert np.std(values) > 0.0

    def test_drift_reduces_transmission(self):
        array = PCMCellArray((4, 4), PCMModel(sigma_program=0.0), seed=3)
        array.program_levels(np.full((4, 4), 10, dtype=np.int64))
        fresh = array.transmissions(0.0)
        aged = array.transmissions(3600.0 * 24 * 30)
        assert np.all(aged <= fresh)
        assert aged.mean() < fresh.mean()

    def test_quantize_weights(self):
        array = PCMCellArray((2, 2), PCMModel(n_levels=4))
        levels = array.quantize_weights(np.array([[0.0, 1.0], [0.34, 0.66]]))
        assert levels.tolist() == [[0, 3], [1, 2]]
        with pytest.raises(ValueError):
            array.quantize_weights(np.array([[1.5, 0.0], [0.0, 0.0]]))

    def test_shape_and_range_validation(self):
        array = PCMCellArray((2, 2))
        with pytest.raises(ValueError):
            array.program_levels(np.zeros((3, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            array.program_levels(np.full((2, 2), 99, dtype=np.int64))
        with pytest.raises(ValueError):
            array.transmissions(-1.0)
