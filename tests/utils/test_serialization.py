"""Tests for protocol message serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.serialization import decode_fields, encode_fields, from_hex, to_hex


class TestEncodeDecode:
    def test_round_trip(self):
        fields = [b"hello", b"", b"\x00\x01"]
        assert decode_fields(encode_fields(fields)) == fields

    def test_empty_sequence(self):
        assert decode_fields(encode_fields([])) == []

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            encode_fields(["str"])  # type: ignore[list-item]

    def test_truncated_prefix_rejected(self):
        with pytest.raises(ValueError):
            decode_fields(b"\x00\x00")

    def test_truncated_body_rejected(self):
        with pytest.raises(ValueError):
            decode_fields(b"\x00\x00\x00\x05ab")

    def test_injective(self):
        # [b"ab"] and [b"a", b"b"] must encode differently (MAC safety).
        assert encode_fields([b"ab"]) != encode_fields([b"a", b"b"])

    @given(st.lists(st.binary(max_size=32), max_size=8))
    def test_round_trip_property(self, fields):
        assert decode_fields(encode_fields(fields)) == fields


class TestHex:
    def test_round_trip(self):
        assert from_hex(to_hex(b"\xde\xad")) == b"\xde\xad"
