"""Tests for protocol message serialization and state archives."""

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.serialization import (
    MANIFEST_KEY,
    SCHEMA_VERSION_KEY,
    STATE_SCHEMA_MAJOR,
    STATE_SCHEMA_MINOR,
    decode_fields,
    encode_fields,
    from_hex,
    load_state,
    save_state,
    to_hex,
)


class TestEncodeDecode:
    def test_round_trip(self):
        fields = [b"hello", b"", b"\x00\x01"]
        assert decode_fields(encode_fields(fields)) == fields

    def test_empty_sequence(self):
        assert decode_fields(encode_fields([])) == []

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            encode_fields(["str"])  # type: ignore[list-item]

    def test_truncated_prefix_rejected(self):
        with pytest.raises(ValueError):
            decode_fields(b"\x00\x00")

    def test_truncated_body_rejected(self):
        with pytest.raises(ValueError):
            decode_fields(b"\x00\x00\x00\x05ab")

    def test_injective(self):
        # [b"ab"] and [b"a", b"b"] must encode differently (MAC safety).
        assert encode_fields([b"ab"]) != encode_fields([b"a", b"b"])

    @given(st.lists(st.binary(max_size=32), max_size=8))
    def test_round_trip_property(self, fields):
        assert decode_fields(encode_fields(fields)) == fields


class TestHex:
    def test_round_trip(self):
        assert from_hex(to_hex(b"\xde\xad")) == b"\xde\xad"


def write_archive_with_manifest(path, manifest: dict) -> None:
    """A raw archive with full control over the stored manifest JSON."""
    np.savez(path, **{MANIFEST_KEY: np.frombuffer(
        json.dumps(manifest).encode(), dtype=np.uint8)})


class TestStateSchemaVersion:
    def test_save_stamps_current_version(self, tmp_path):
        written = save_state(str(tmp_path / "state"), {"kind": "t"}, {})
        with np.load(written) as archive:
            stored = json.loads(bytes(archive[MANIFEST_KEY]).decode())
        assert stored[SCHEMA_VERSION_KEY] == \
            f"{STATE_SCHEMA_MAJOR}.{STATE_SCHEMA_MINOR}"

    def test_load_strips_the_stamp(self, tmp_path):
        manifest = {"kind": "t", "n": 3}
        written = save_state(str(tmp_path / "state"), manifest, {})
        loaded, __ = load_state(written)
        assert loaded == manifest  # stamp is an envelope detail

    def test_reserved_manifest_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_state(str(tmp_path / "bad"),
                       {SCHEMA_VERSION_KEY: "9.9"}, {})

    def test_unknown_major_version_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        write_archive_with_manifest(
            path, {"kind": "t",
                   SCHEMA_VERSION_KEY: f"{STATE_SCHEMA_MAJOR + 1}.0"})
        with pytest.raises(ValueError, match="schema version"):
            load_state(str(path))

    def test_newer_minor_version_accepted(self, tmp_path):
        path = tmp_path / "minor.npz"
        write_archive_with_manifest(
            path, {"kind": "t",
                   SCHEMA_VERSION_KEY: f"{STATE_SCHEMA_MAJOR}.9"})
        manifest, __ = load_state(str(path))
        assert manifest == {"kind": "t"}

    def test_legacy_unstamped_archive_accepted(self, tmp_path):
        # Archives written before versioning carry no stamp: accepted.
        path = tmp_path / "legacy.npz"
        write_archive_with_manifest(path, {"kind": "t", "n": 1})
        manifest, __ = load_state(str(path))
        assert manifest == {"kind": "t", "n": 1}

    def test_garbage_version_rejected_clearly(self, tmp_path):
        path = tmp_path / "garbage.npz"
        write_archive_with_manifest(
            path, {"kind": "t", SCHEMA_VERSION_KEY: "not-a-version"})
        with pytest.raises(ValueError, match="unparsable"):
            load_state(str(path))

    def test_registry_round_trip_still_works(self, tmp_path):
        # The fleet registry's own save/load rides the stamped envelope.
        from repro.service import AuthService, FleetConfig
        from repro.fleet import FleetRegistry
        service = AuthService.provision(FleetConfig(
            n_devices=2, seed=91,
            puf=dict(challenge_bits=32, n_stages=4, response_bits=16)))
        written = service.registry.save(str(tmp_path / "registry"))
        restored = FleetRegistry.load(written)
        assert sorted(restored.device_ids()) == \
            sorted(service.registry.device_ids())
