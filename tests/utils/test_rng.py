"""Tests for deterministic RNG stream derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_context_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_no_concatenation_collision(self):
        # ("ab",) must differ from ("a", "b"): field separation matters.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_64_bit_range(self):
        seed = derive_seed(123, "x")
        assert 0 <= seed < 2**64

    @given(st.integers(0, 2**32), st.text(max_size=10))
    def test_stable_under_repetition(self, root, label):
        assert derive_seed(root, label) == derive_seed(root, label)


class TestDeriveRng:
    def test_streams_reproducible(self):
        a = derive_rng(9, "noise", 0).standard_normal(5)
        b = derive_rng(9, "noise", 0).standard_normal(5)
        assert (a == b).all()

    def test_streams_independent(self):
        a = derive_rng(9, "noise", 0).standard_normal(5)
        b = derive_rng(9, "noise", 1).standard_normal(5)
        assert not (a == b).all()


class TestDeriveBytes:
    def test_deterministic_and_context_bound(self):
        from repro.utils.rng import derive_bytes

        assert derive_bytes(16, 7, "nonce", 0) == derive_bytes(16, 7, "nonce", 0)
        assert derive_bytes(16, 7, "nonce", 0) != derive_bytes(16, 7, "nonce", 1)
        assert len(derive_bytes(5, 7, "x")) == 5

    def test_length_bounds(self):
        import pytest

        from repro.utils.rng import derive_bytes

        with pytest.raises(ValueError):
            derive_bytes(33, 7)
        assert derive_bytes(0, 7) == b""


class TestDeriveStandardNormalsBatch:
    def test_matches_per_stream_draws(self):
        import numpy as np

        from repro.utils.rng import derive_standard_normals

        suffixes = [f"component.{i}" for i in range(64)] + [0, 1, 2, (3, "z")]
        batched = derive_standard_normals(11, ("die", 4, "neff"), suffixes)
        for suffix, value in zip(suffixes, batched):
            expected = derive_rng(11, "die", 4, "neff", suffix).standard_normal()
            assert value == expected, suffix

    def test_covers_narrow_seeds(self):
        # Seeds below 2**32 take the single-entropy-word SeedSequence
        # path; exercise the vectorized equivalent on both partitions.
        from repro.utils.rng import _pcg64_states
        import numpy as np

        probe = [0, 1, 2**16, 2**32 - 1, 2**32, 2**40, 2**64 - 1]
        for seed, state in zip(probe, _pcg64_states(probe)):
            generator = np.random.Generator(np.random.PCG64(0))
            generator.bit_generator.state = state
            assert generator.standard_normal() == \
                np.random.default_rng(seed).standard_normal()
