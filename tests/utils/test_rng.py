"""Tests for deterministic RNG stream derivation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_context_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_no_concatenation_collision(self):
        # ("ab",) must differ from ("a", "b"): field separation matters.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_64_bit_range(self):
        seed = derive_seed(123, "x")
        assert 0 <= seed < 2**64

    @given(st.integers(0, 2**32), st.text(max_size=10))
    def test_stable_under_repetition(self, root, label):
        assert derive_seed(root, label) == derive_seed(root, label)


class TestDeriveRng:
    def test_streams_reproducible(self):
        a = derive_rng(9, "noise", 0).standard_normal(5)
        b = derive_rng(9, "noise", 0).standard_normal(5)
        assert (a == b).all()

    def test_streams_independent(self):
        a = derive_rng(9, "noise", 0).standard_normal(5)
        b = derive_rng(9, "noise", 1).standard_normal(5)
        assert not (a == b).all()
