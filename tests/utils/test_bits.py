"""Unit + property tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import bits as B


class TestIntConversions:
    def test_round_trip_small(self):
        assert B.int_from_bits(B.bits_from_int(5, 4)) == 5

    def test_zero_width(self):
        assert B.bits_from_int(0, 0).size == 0

    def test_msb_first(self):
        assert B.bits_from_int(4, 3).tolist() == [1, 0, 0]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            B.bits_from_int(8, 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            B.bits_from_int(-1, 4)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_round_trip_property(self, value):
        assert B.int_from_bits(B.bits_from_int(value, 64)) == value


class TestByteConversions:
    def test_round_trip(self):
        data = b"\x00\xff\xa5"
        assert B.bytes_from_bits(B.bits_from_bytes(data)) == data

    def test_empty(self):
        assert B.bits_from_bytes(b"").size == 0
        assert B.bytes_from_bits([]) == b""

    def test_non_multiple_of_eight_rejected(self):
        with pytest.raises(ValueError):
            B.bytes_from_bits([1, 0, 1])

    @given(st.binary(max_size=64))
    def test_round_trip_property(self, data):
        assert B.bytes_from_bits(B.bits_from_bytes(data)) == data


class TestHamming:
    def test_weight(self):
        assert B.hamming_weight([1, 0, 1, 1]) == 3

    def test_distance_identical(self):
        assert B.hamming_distance([0, 1, 1], [0, 1, 1]) == 0

    def test_distance_opposite(self):
        assert B.hamming_distance([0, 0], [1, 1]) == 2

    def test_distance_length_mismatch(self):
        with pytest.raises(ValueError):
            B.hamming_distance([0], [0, 1])

    def test_fractional(self):
        assert B.fractional_hamming_distance([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5

    def test_fractional_empty_rejected(self):
        with pytest.raises(ValueError):
            B.fractional_hamming_distance([], [])

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=100))
    def test_distance_to_self_is_zero(self, bits):
        assert B.hamming_distance(bits, bits) == 0

    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=50),
        st.lists(st.integers(0, 1), min_size=1, max_size=50),
    )
    def test_symmetry(self, a, b):
        if len(a) != len(b):
            return
        assert B.hamming_distance(a, b) == B.hamming_distance(b, a)


class TestMisc:
    def test_random_bits_deterministic(self):
        rng1 = np.random.default_rng(7)
        rng2 = np.random.default_rng(7)
        assert np.array_equal(B.random_bits(rng1, 100), B.random_bits(rng2, 100))

    def test_random_bits_binary(self):
        bits = B.random_bits(np.random.default_rng(0), 1000)
        assert set(np.unique(bits)) <= {0, 1}

    def test_flip_bits(self):
        assert B.flip_bits([0, 0, 0], [1]).tolist() == [0, 1, 0]

    def test_flip_does_not_mutate(self):
        original = np.array([0, 0], dtype=np.uint8)
        B.flip_bits(original, [0])
        assert original.tolist() == [0, 0]

    def test_majority_vote(self):
        votes = [[1, 0, 1], [1, 1, 0], [0, 0, 1]]
        assert B.majority_vote(votes).tolist() == [1, 0, 1]

    def test_xor(self):
        assert B.xor_bits([1, 0, 1], [1, 1, 0]).tolist() == [0, 1, 1]

    def test_bits_to_string(self):
        assert B.bits_to_string([1, 0, 1]) == "101"

    def test_reject_non_binary(self):
        with pytest.raises(ValueError):
            B.hamming_weight([0, 2])

    @given(st.lists(st.integers(0, 1), min_size=8, max_size=40))
    def test_xor_self_is_zero(self, bits):
        assert B.hamming_weight(B.xor_bits(bits, bits)) == 0
