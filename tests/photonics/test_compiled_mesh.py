"""Scalar-vs-compiled equivalence for the vectorized propagation engine."""

import numpy as np
import pytest

from repro.photonics.engine import environment_cache_key
from repro.photonics.mesh import PassiveScrambler, ScramblingMesh
from repro.photonics.sources import MachZehnderModulator
from repro.photonics.variation import OpticalEnvironment, VariationModel


RTOL = 1e-9


@pytest.fixture(scope="module")
def die():
    return VariationModel().sample_die(3, 2)


@pytest.fixture(scope="module")
def scrambler(die):
    return PassiveScrambler(n_channels=8, n_stages=5, design_seed=3, variation=die)


def random_fields(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestCompilation:
    def test_alias_is_the_same_class(self):
        assert ScramblingMesh is PassiveScrambler

    def test_operator_shapes(self, scrambler):
        engine = scrambler.compile()
        n, stages, delay = 8, 5, scrambler.ring_delay_samples
        assert engine.stage_matrices.shape == (stages, n, n)
        assert engine.ring_b.shape == (stages, n, delay + 1)
        assert engine.ring_a.shape == (stages, n, delay + 1)
        assert engine.static_matrix.shape == (n, n)
        assert engine.memory_footprint_bytes() > 0

    def test_stage_matrices_match_layers(self, scrambler):
        engine = scrambler.compile()
        for stage, layer in enumerate(scrambler.layers):
            assert np.array_equal(engine.stage_matrices[stage], layer.matrix())

    def test_ring_coefficients_match_rings(self, scrambler):
        engine = scrambler.compile()
        for stage in range(scrambler.n_stages):
            for channel in range(scrambler.n_channels):
                b, a = scrambler._ring(stage, channel).coefficients()
                assert np.array_equal(engine.ring_b[stage, channel], b)
                assert np.array_equal(engine.ring_a[stage, channel], a)

    def test_cache_key_ignores_detection_noise(self):
        quiet = OpticalEnvironment(detection_noise_scale=1.0)
        noisy = OpticalEnvironment(detection_noise_scale=7.0)
        assert environment_cache_key(1.55e-6, quiet) == environment_cache_key(
            1.55e-6, noisy
        )
        hot = OpticalEnvironment(temperature_c=60.0)
        assert environment_cache_key(1.55e-6, quiet) != environment_cache_key(
            1.55e-6, hot
        )


class TestPropagationEquivalence:
    def test_batch_matches_loop_path(self, scrambler):
        fields = random_fields((12, 8, 96))
        reference = scrambler.propagate(fields)
        compiled = scrambler.compile().propagate(fields)
        assert np.allclose(compiled, reference, rtol=RTOL, atol=1e-12)

    def test_single_interrogation_squeezes(self, scrambler):
        fields = random_fields((8, 96))
        reference = scrambler.propagate(fields)
        compiled = scrambler.compile().propagate(fields)
        assert compiled.shape == reference.shape == (8, 96)
        assert np.allclose(compiled, reference, rtol=RTOL, atol=1e-12)

    def test_without_memory_uses_static_matrix(self, die):
        scrambler = PassiveScrambler(8, 5, 3, die, with_memory=False)
        fields = random_fields((4, 8, 32))
        reference = scrambler.propagate(fields)
        compiled = scrambler.compile().propagate(fields)
        assert np.allclose(compiled, reference, rtol=RTOL, atol=1e-12)

    def test_environment_changes_operators(self, scrambler):
        hot = OpticalEnvironment(temperature_c=60.0)
        fields = random_fields((3, 8, 64))
        reference = scrambler.propagate(fields, env=hot)
        compiled = scrambler.compile(env=hot).propagate(fields)
        assert np.allclose(compiled, reference, rtol=RTOL, atol=1e-12)
        nominal = scrambler.compile().propagate(fields)
        assert not np.allclose(compiled, nominal)

    def test_unpadded_sample_count(self, die):
        # n_samples not divisible by the ring delay exercises the padding.
        scrambler = PassiveScrambler(4, 3, 9, die, ring_delay_samples=4)
        fields = random_fields((5, 4, 83))
        reference = scrambler.propagate(fields)
        compiled = scrambler.compile().propagate(fields)
        assert compiled.shape == (5, 4, 83)
        assert np.allclose(compiled, reference, rtol=RTOL, atol=1e-12)

    def test_long_stream_stays_stable(self, die):
        # A long stream (many recurrence blocks) must not accumulate error.
        scrambler = PassiveScrambler(4, 2, 9, die, ring_delay_samples=2)
        fields = random_fields((2, 4, 2 * (512 + 40)))
        reference = scrambler.propagate(fields)
        compiled = scrambler.compile().propagate(fields)
        assert np.allclose(compiled, reference, rtol=RTOL, atol=1e-12)

    def test_channel_mismatch_rejected(self, scrambler):
        with pytest.raises(ValueError):
            scrambler.compile().propagate(random_fields((2, 5, 16)))

    def test_stacked_scan_matches_per_ring_filter(self, scrambler):
        # The generalized scan applied to one bank agrees with each ring's
        # scipy.lfilter reference individually.
        engine = scrambler.compile()
        fields = random_fields((3, 8, 96), seed=11)
        banked = engine._ring_bank(2, fields)
        for channel in range(8):
            ring = scrambler._ring(2, channel)
            expected = ring.filter(fields[:, channel, :])
            assert np.allclose(banked[:, channel, :], expected,
                               rtol=RTOL, atol=1e-12)


class TestScanCacheBound:
    def test_varied_sample_counts_stay_bounded(self, scrambler):
        from repro.photonics.engine import _SCAN_CACHE_LIMIT

        engine = scrambler.compile()
        # Sweep far more distinct sample counts (hence (stage, blocks)
        # keys) than the cap admits; the LRU must evict, not grow.
        for n_samples in range(16, 16 + 4 * _SCAN_CACHE_LIMIT, 2):
            engine.propagate(random_fields((1, 8, n_samples)))
        assert len(engine._scan_cache) <= _SCAN_CACHE_LIMIT

    def test_eviction_is_least_recently_used(self, scrambler):
        from repro.photonics.engine import _SCAN_CACHE_LIMIT

        engine = scrambler.compile()
        delay = scrambler.ring_delay_samples
        hot = (0, 1)
        engine._scan_coefficients(*hot)
        # Keep the hot key warm while flooding with fresh keys: it must
        # survive every eviction round.
        for blocks in range(2, 2 + 2 * _SCAN_CACHE_LIMIT):
            engine._scan_coefficients(0, blocks)
            engine._scan_coefficients(*hot)
            assert hot in engine._scan_cache
        assert len(engine._scan_cache) <= _SCAN_CACHE_LIMIT
        # Evicted entries rebuild transparently with identical results.
        fields = random_fields((1, 8, delay * 3))
        assert engine.propagate(fields).shape == (1, 8, delay * 3)


class TestBatchedModulator:
    def test_drive_waveform_batch_matches_scalar(self):
        modulator = MachZehnderModulator(samples_per_bit=4, rise_samples=1.5)
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, size=(6, 24), dtype=np.uint8)
        batch = modulator.drive_waveform_batch(bits)
        for row in range(6):
            assert np.allclose(batch[row], modulator.drive_waveform(bits[row]),
                               rtol=RTOL, atol=1e-12)

    def test_modulate_batch_matches_scalar(self):
        modulator = MachZehnderModulator(samples_per_bit=2, rise_samples=0.0)
        bits = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        carrier = np.full(6, 2.0, dtype=np.complex128)
        batch = modulator.modulate_batch(carrier, bits)
        for row in range(2):
            assert np.allclose(batch[row], modulator.modulate(carrier, bits[row]))
