"""Tests for the laser/modulator source chain and the PD/TIA/ADC receive chain."""

import numpy as np
import pytest

from repro.photonics.receiver import (
    AnalogToDigitalConverter,
    Photodiode,
    ReceiverChain,
    TransimpedanceAmplifier,
)
from repro.photonics.sources import Laser, MachZehnderModulator


def rng():
    return np.random.default_rng(1234)


class TestLaser:
    def test_field_power(self):
        laser = Laser(power_mw=4.0)
        assert laser.field_amplitude() == pytest.approx(2.0)

    def test_emission_mean_power(self):
        laser = Laser(power_mw=2.0)
        field = laser.emit(10_000, 20e9, rng())
        assert np.mean(np.abs(field) ** 2) == pytest.approx(2.0, rel=0.01)

    def test_rin_scales_with_bandwidth(self):
        laser = Laser()
        assert laser.rin_sigma(40e9) > laser.rin_sigma(10e9)


class TestModulator:
    def test_sample_count(self):
        mod = MachZehnderModulator(samples_per_bit=8)
        assert mod.n_samples(16) == 128

    def test_extinction_ratio(self):
        mod = MachZehnderModulator(extinction_ratio_db=20.0, rise_samples=0.0)
        wave = mod.drive_waveform(np.array([1, 0], dtype=np.uint8))
        ratio_db = 20 * np.log10(wave[:8].max() / wave[8:].min())
        assert ratio_db == pytest.approx(20.0, abs=0.5)

    def test_finite_rise_time_smooths_edges(self):
        sharp = MachZehnderModulator(rise_samples=0.0)
        smooth = MachZehnderModulator(rise_samples=2.0)
        bits = np.array([0, 1, 0], dtype=np.uint8)
        assert np.max(np.abs(np.diff(smooth.drive_waveform(bits)))) < \
            np.max(np.abs(np.diff(sharp.drive_waveform(bits))))

    def test_modulate_length_mismatch(self):
        mod = MachZehnderModulator()
        with pytest.raises(ValueError):
            mod.modulate(np.ones(3, dtype=complex), np.array([1], dtype=np.uint8))

    def test_rate_25g(self):
        mod = MachZehnderModulator(bit_rate=25e9)
        assert mod.bit_period == pytest.approx(40e-12)


class TestPhotodiode:
    def test_responsivity(self):
        pd = Photodiode(responsivity_a_per_w=0.9, dark_current_na=0.0)
        field = np.full(20_000, 1.0, dtype=complex)  # 1 mW
        current = pd.detect(field, rng())
        assert np.mean(current) == pytest.approx(0.9, rel=0.01)  # mA

    def test_square_law_phase_insensitive_single_tone(self):
        pd = Photodiode(dark_current_na=0.0)
        a = pd.detect(np.full(1000, 1.0, dtype=complex), rng(), noise_scale=0.0)
        b = pd.detect(np.full(1000, 1.0j, dtype=complex), rng(), noise_scale=0.0)
        assert np.allclose(a, b)

    def test_interference_is_phase_sensitive(self):
        # |E1 + E2|^2 depends on relative phase: the coherence property the
        # paper exploits (Sec. II-A).
        pd = Photodiode(dark_current_na=0.0)
        constructive = pd.detect(np.array([1.0 + 1.0]), rng(), noise_scale=0.0)
        destructive = pd.detect(np.array([1.0 - 1.0]), rng(), noise_scale=0.0)
        assert constructive[0] > destructive[0]

    def test_shot_noise_grows_with_power(self):
        pd = Photodiode(dark_current_na=0.0)
        low = pd.detect(np.full(50_000, 0.1, dtype=complex), rng())
        high = pd.detect(np.full(50_000, 3.0, dtype=complex), rng())
        assert np.std(high) > np.std(low)


class TestTIA:
    def test_gain(self):
        tia = TransimpedanceAmplifier(gain_ohm=1000.0)
        v = tia.amplify(np.array([1.0]), rng(), noise_scale=0.0)  # 1 mA
        assert v[0] == pytest.approx(1.0)  # 1 mA * 1 kOhm = 1 V

    def test_noise_nonzero(self):
        tia = TransimpedanceAmplifier()
        v = tia.amplify(np.zeros(10_000), rng())
        assert np.std(v) > 0.0


class TestADC:
    def test_quantize_range(self):
        adc = AnalogToDigitalConverter(n_bits=8, full_scale_v=1.0)
        codes = adc.quantize(np.array([-0.5, 0.0, 0.5, 2.0]))
        assert codes.tolist() == [0, 0, 128, 255]

    def test_lsb(self):
        adc = AnalogToDigitalConverter(n_bits=10, full_scale_v=1.0)
        assert adc.lsb == pytest.approx(1.0 / 1024)

    def test_reconstruction_error_bounded(self):
        adc = AnalogToDigitalConverter(n_bits=12, full_scale_v=1.0)
        v = np.linspace(0.0, 0.999, 100)
        recon = adc.to_voltage(adc.quantize(v))
        assert np.max(np.abs(recon - v)) <= adc.lsb


class TestReceiverChain:
    def test_digitize_shape_and_determinism(self):
        chain = ReceiverChain()
        field = np.full(64, 0.5, dtype=complex)
        a = chain.digitize(field, np.random.default_rng(5))
        b = chain.digitize(field, np.random.default_rng(5))
        assert a.shape == (64,)
        assert np.array_equal(a, b)

    def test_more_power_higher_codes(self):
        chain = ReceiverChain()
        weak = chain.digitize(np.full(256, 0.1, dtype=complex), rng())
        strong = chain.digitize(np.full(256, 0.9, dtype=complex), rng())
        assert strong.mean() > weak.mean()
