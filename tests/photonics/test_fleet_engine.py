"""Equivalence suite for the fleet-stacked execution plane.

Every die's output from the stacked pass must match (rtol 1e-9) both the
per-die :class:`CompiledMesh` and the uncompiled loop path of
:meth:`PassiveScrambler.propagate`, including a die-count-1 fleet and a
ragged-environment fleet (per-die operating points).
"""

import numpy as np
import pytest

from repro.photonics.engine import CompiledMesh, stacked_ring_scan
from repro.photonics.fleet_engine import CompiledFleet
from repro.photonics.mesh import PassiveScrambler
from repro.photonics.variation import OpticalEnvironment, VariationModel

RTOL = 1e-9
N_DIES = 5


@pytest.fixture(scope="module")
def scramblers():
    model = VariationModel()
    return [
        PassiveScrambler(n_channels=8, n_stages=4, design_seed=3,
                         variation=model.sample_die(3, die))
        for die in range(N_DIES)
    ]


@pytest.fixture(scope="module")
def fleet(scramblers):
    return CompiledFleet.compile(scramblers)


@pytest.fixture(scope="module")
def meshes(scramblers):
    return [CompiledMesh.compile(s) for s in scramblers]


def random_fields(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


class TestStackedCompilation:
    def test_operators_match_per_die_compile(self, fleet, meshes):
        for die, mesh in enumerate(meshes):
            assert np.allclose(fleet.stage_matrices[die], mesh.stage_matrices,
                               rtol=1e-12, atol=1e-15)
            assert np.array_equal(fleet.ring_b[die], mesh.ring_b)
            assert np.array_equal(fleet.ring_a[die], mesh.ring_a)
            assert np.allclose(fleet.static_matrix[die], mesh.static_matrix,
                               rtol=1e-12, atol=1e-15)

    def test_from_meshes_matches_batched_compile(self, fleet, meshes):
        stacked = CompiledFleet.from_meshes(meshes)
        assert np.allclose(stacked.stage_matrices, fleet.stage_matrices,
                           rtol=1e-12, atol=1e-15)
        assert np.array_equal(stacked.ring_b, fleet.ring_b)

    def test_mesh_view_shares_operators(self, fleet, meshes):
        view = fleet.mesh(2)
        fields = random_fields((3, 8, 64))
        assert np.allclose(view.propagate(fields),
                           meshes[2].propagate(fields),
                           rtol=RTOL, atol=1e-12)

    def test_heterogeneous_geometry_rejected(self, scramblers):
        odd = PassiveScrambler(n_channels=4, n_stages=4, design_seed=3)
        with pytest.raises(ValueError):
            CompiledFleet.compile([scramblers[0], odd])
        with pytest.raises(ValueError):
            CompiledFleet.compile(
                [scramblers[0],
                 PassiveScrambler(n_channels=8, n_stages=4, design_seed=9)]
            )

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            CompiledFleet.compile([])

    def test_memory_accounting(self, fleet):
        total = fleet.memory_footprint_bytes()
        assert total > 0
        assert fleet.per_die_bytes() == total // N_DIES
        fleet.response_kernel(4, 64)
        assert fleet.memory_footprint_bytes() > total


class TestStackedPropagation:
    def test_matches_compiled_and_loop_paths(self, fleet, scramblers, meshes):
        fields = random_fields((N_DIES, 3, 8, 83), seed=1)
        stacked = fleet.propagate(fields)
        for die, scrambler in enumerate(scramblers):
            compiled = meshes[die].propagate(fields[die])
            loop = scrambler.propagate(fields[die])
            assert np.allclose(stacked[die], compiled, rtol=RTOL, atol=1e-12)
            assert np.allclose(stacked[die], loop, rtol=RTOL, atol=1e-12)

    def test_single_die_fleet(self, scramblers):
        fleet = CompiledFleet.compile(scramblers[:1])
        fields = random_fields((1, 2, 8, 40), seed=2)
        reference = scramblers[0].propagate(fields[0])
        assert np.allclose(fleet.propagate(fields)[0], reference,
                           rtol=RTOL, atol=1e-12)

    def test_ragged_environments(self, scramblers):
        envs = [OpticalEnvironment(temperature_c=25.0 + 7.0 * die)
                for die in range(N_DIES)]
        fleet = CompiledFleet.compile(scramblers, envs=envs)
        fields = random_fields((N_DIES, 2, 8, 48), seed=3)
        stacked = fleet.propagate(fields)
        for die, scrambler in enumerate(scramblers):
            loop = scrambler.propagate(fields[die], env=envs[die])
            assert np.allclose(stacked[die], loop, rtol=RTOL, atol=1e-12)
        nominal = CompiledFleet.compile(scramblers).propagate(fields)
        assert not np.allclose(stacked[1:], nominal[1:])

    def test_batchless_input_squeezes(self, fleet, meshes):
        fields = random_fields((N_DIES, 8, 36), seed=4)
        stacked = fleet.propagate(fields)
        assert stacked.shape == (N_DIES, 8, 36)
        for die, mesh in enumerate(meshes):
            assert np.allclose(stacked[die], mesh.propagate(fields[die]),
                               rtol=RTOL, atol=1e-12)

    def test_die_subset(self, fleet, meshes):
        subset = [3, 0]
        fields = random_fields((2, 2, 8, 44), seed=5)
        stacked = fleet.propagate(fields, dies=subset)
        for position, die in enumerate(subset):
            assert np.allclose(stacked[position],
                               meshes[die].propagate(fields[position]),
                               rtol=RTOL, atol=1e-12)

    def test_without_memory_uses_static_matrices(self):
        model = VariationModel()
        scramblers = [
            PassiveScrambler(8, 3, 11, model.sample_die(11, die),
                             with_memory=False)
            for die in range(3)
        ]
        fleet = CompiledFleet.compile(scramblers)
        fields = random_fields((3, 2, 8, 24), seed=6)
        stacked = fleet.propagate(fields)
        for die, scrambler in enumerate(scramblers):
            assert np.allclose(stacked[die], scrambler.propagate(fields[die]),
                               rtol=RTOL, atol=1e-12)

    def test_shape_validation(self, fleet):
        with pytest.raises(ValueError):
            fleet.propagate(random_fields((2, 1, 8, 16)))   # wrong die count
        with pytest.raises(ValueError):
            fleet.propagate(random_fields((N_DIES, 1, 5, 16)))  # channels


class TestResponseKernels:
    def test_modulated_response_matches_propagate(self, fleet):
        rng = np.random.default_rng(7)
        waves = rng.standard_normal((N_DIES, 2, 60))
        sparse = np.zeros((N_DIES, 2, 8, 60), dtype=np.complex128)
        sparse[:, :, 4, :] = waves
        reference = fleet.propagate(sparse)
        via_kernel = fleet.modulated_response(waves, launch=4)
        assert np.allclose(via_kernel, reference, rtol=RTOL, atol=1e-12)

    def test_response_power_at_selected_samples(self, fleet):
        rng = np.random.default_rng(8)
        waves = rng.standard_normal((N_DIES, 3, 60))
        sparse = np.zeros((N_DIES, 3, 8, 60), dtype=np.complex128)
        sparse[:, :, 4, :] = waves
        reference = np.abs(fleet.propagate(sparse)) ** 2
        samples = np.array([0, 13, 27, 58, 59])
        power = fleet.response_power_at(waves, samples, launch=4)
        assert np.allclose(power, reference[..., samples],
                           rtol=RTOL, atol=1e-12)

    def test_kernel_cache_reused(self, fleet):
        first = fleet.response_kernel(4, 60)
        again = fleet.response_kernel(4, 60)
        assert first[2] is again[2]
        other = fleet.response_kernel(4, 72)
        assert other[2] is not first[2]

    def test_kernel_subset_dies(self, fleet, meshes):
        rng = np.random.default_rng(9)
        waves = rng.standard_normal((2, 1, 52))
        subset = [4, 2]
        out = fleet.modulated_response(waves, launch=4, dies=subset)
        for position, die in enumerate(subset):
            sparse = np.zeros((1, 8, 52), dtype=np.complex128)
            sparse[:, 4, :] = waves[position]
            assert np.allclose(out[position], meshes[die].propagate(sparse),
                               rtol=RTOL, atol=1e-12)


class TestStackedRingScan:
    def test_matches_lfilter_reference(self, scramblers):
        scrambler = scramblers[0]
        mesh = CompiledMesh.compile(scrambler)
        fields = random_fields((2, 8, 64), seed=10)
        stacked = stacked_ring_scan(
            fields,
            mesh.ring_b[1, :, 0][:, np.newaxis],
            -mesh.ring_b[1, :, -1][:, np.newaxis],
            -mesh.ring_a[1, :, -1][:, np.newaxis],
            mesh.delay_samples,
        )
        for channel in range(8):
            reference = scrambler._ring(1, channel).filter(
                fields[:, channel, :]
            )
            assert np.allclose(stacked[:, channel, :], reference,
                               rtol=RTOL, atol=1e-12)

    def test_unpadded_sample_count(self, scramblers):
        scrambler = scramblers[0]
        mesh = CompiledMesh.compile(scrambler)
        fields = random_fields((1, 8, 61), seed=11)   # 61 % 4 != 0
        stacked = stacked_ring_scan(
            fields,
            mesh.ring_b[0, :, 0][:, np.newaxis],
            -mesh.ring_b[0, :, -1][:, np.newaxis],
            -mesh.ring_a[0, :, -1][:, np.newaxis],
            mesh.delay_samples,
        )
        assert stacked.shape == (1, 8, 61)
        reference = scrambler._ring(0, 0).filter(fields[:, 0, :])
        assert np.allclose(stacked[:, 0, :], reference, rtol=RTOL, atol=1e-12)
