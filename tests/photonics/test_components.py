"""Tests for passive photonic component models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.photonics.components import (
    DirectionalCoupler,
    MachZehnderInterferometer,
    MicroringAddDrop,
    MicroringAllPass,
    PhaseShifter,
    Waveguide,
    effective_index,
)
from repro.photonics.constants import (
    DEFAULT_N_EFF,
    DEFAULT_WAVELENGTH,
    loss_db_per_cm_to_alpha,
)
from repro.photonics.variation import OpticalEnvironment, VariationModel


class TestEffectiveIndex:
    def test_reference_point(self):
        assert effective_index(DEFAULT_WAVELENGTH) == pytest.approx(DEFAULT_N_EFF)

    def test_dispersion_sign(self):
        # n_g > n_eff, so n_eff decreases with increasing wavelength.
        assert effective_index(1.56e-6) < effective_index(1.54e-6)

    def test_thermal_shift_positive(self):
        hot = effective_index(DEFAULT_WAVELENGTH, delta_t=10.0)
        assert hot > DEFAULT_N_EFF


class TestWaveguide:
    def test_loss_reduces_amplitude(self):
        wg = Waveguide(length=1e-2)  # 1 cm at 2 dB/cm
        power_db = 20 * math.log10(abs(wg.transmission()))
        assert power_db == pytest.approx(-2.0, abs=0.01)

    def test_zero_length_identity(self):
        wg = Waveguide(length=0.0)
        assert wg.transmission() == pytest.approx(1.0)

    def test_phase_accumulates_with_length(self):
        short = Waveguide(length=1e-6).transmission()
        # A length change of lambda/(2 n_eff) flips the field sign.
        half_wave = DEFAULT_WAVELENGTH / (2 * DEFAULT_N_EFF)
        longer = Waveguide(length=1e-6 + half_wave).transmission()
        assert np.angle(longer / short) == pytest.approx(math.pi, abs=1e-2) or \
            np.angle(longer / short) == pytest.approx(-math.pi, abs=1e-2)

    def test_group_delay(self):
        wg = Waveguide(length=1e-3)
        # 1 mm at n_g = 4.2 -> ~14 ps
        assert wg.group_delay() == pytest.approx(14e-12, rel=0.05)

    def test_alpha_conversion(self):
        # 10 dB/cm over 1 cm must attenuate power by 10x.
        alpha = loss_db_per_cm_to_alpha(10.0)
        assert math.exp(-alpha * 0.01) == pytest.approx(0.1, rel=1e-6)


class TestDirectionalCoupler:
    def test_unitary(self):
        m = DirectionalCoupler(0.3).matrix()
        assert np.allclose(m @ m.conj().T, np.eye(2), atol=1e-12)

    def test_full_coupling_crosses(self):
        m = DirectionalCoupler(1.0 - 1e-9).matrix()
        out = m @ np.array([1.0, 0.0])
        assert abs(out[1]) ** 2 == pytest.approx(1.0, abs=1e-4)

    def test_no_coupling_passes(self):
        m = DirectionalCoupler(1e-9).matrix()
        out = m @ np.array([1.0, 0.0])
        assert abs(out[0]) ** 2 == pytest.approx(1.0, abs=1e-4)

    @given(st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=25)
    def test_energy_conservation(self, kappa):
        m = DirectionalCoupler(kappa).matrix()
        out = m @ np.array([0.6, 0.8j])
        assert np.sum(np.abs(out) ** 2) == pytest.approx(1.0, abs=1e-9)


class TestPhaseShifter:
    def test_nominal_phase(self):
        ps = PhaseShifter(math.pi / 2)
        assert np.angle(ps.factor()) == pytest.approx(-math.pi / 2)

    def test_thermal_drift(self):
        ps = PhaseShifter(0.0)
        hot = OpticalEnvironment(temperature_c=35.0)
        assert ps.shift(env=hot) != pytest.approx(ps.shift())


class TestMZI:
    def test_unitary_without_variation(self):
        m = MachZehnderInterferometer(theta=1.0).matrix()
        assert np.allclose(m @ m.conj().T, np.eye(2), atol=1e-10)

    def test_bar_and_cross_states(self):
        # theta = pi gives the bar state, theta = 0 the cross state
        # (50/50 couplers, no variation).
        cross = MachZehnderInterferometer(theta=0.0).matrix() @ np.array([1.0, 0.0])
        bar = MachZehnderInterferometer(theta=math.pi).matrix() @ np.array([1.0, 0.0])
        assert abs(cross[1]) ** 2 == pytest.approx(1.0, abs=1e-9)
        assert abs(bar[0]) ** 2 == pytest.approx(1.0, abs=1e-9)

    def test_variation_changes_response(self):
        model = VariationModel()
        die = model.sample_die(1, 0)
        nominal = MachZehnderInterferometer(theta=1.0).matrix()
        varied = MachZehnderInterferometer(theta=1.0, variation=die).matrix()
        assert not np.allclose(nominal, varied)


class TestMicroringAllPass:
    def test_lossless_is_all_pass(self):
        ring = MicroringAllPass(loss_db_per_cm=0.0)
        t = ring.through_transmission(1.5502e-6)
        assert abs(t) == pytest.approx(1.0, abs=1e-9)

    def test_resonance_dip_with_loss(self):
        # Near-critical coupling: kappa ~ 1 - a^2 with a the round-trip
        # amplitude at 20 dB/cm, giving a deep resonance dip.
        ring = MicroringAllPass(radius=10e-6, kappa=0.03, loss_db_per_cm=20.0)
        # Span a full FSR (~9.1 nm) so exactly one resonance is inside.
        wavelengths = np.linspace(1.546e-6, 1.556e-6, 4001)
        trans = [abs(ring.through_transmission(w)) ** 2 for w in wavelengths]
        assert min(trans) < 0.5  # a clear resonance dip
        assert max(trans) > 0.9  # off-resonance nearly transparent

    def test_fsr_formula(self):
        ring = MicroringAllPass(radius=10e-6)
        fsr = ring.free_spectral_range()
        expected = DEFAULT_WAVELENGTH**2 / (ring.ng * ring.circumference)
        assert fsr == pytest.approx(expected)


class TestMicroringAddDrop:
    def test_energy_conservation_lossless(self):
        ring = MicroringAddDrop(loss_db_per_cm=0.0)
        for wl in np.linspace(1.5495e-6, 1.5505e-6, 50):
            t, d = ring.responses(wl)
            assert abs(t) ** 2 + abs(d) ** 2 == pytest.approx(1.0, abs=1e-9)

    def test_drop_peak_on_resonance(self):
        ring = MicroringAddDrop(radius=10e-6, kappa_in=0.1, kappa_drop=0.1,
                                loss_db_per_cm=1.0)
        resonances = ring.resonance_wavelengths()
        assert resonances, "expected at least one resonance in the span"
        on_res = ring.drop_power(resonances[0])
        off_res = ring.drop_power(resonances[0] + ring.free_spectral_range() / 2
                                  if hasattr(ring, "free_spectral_range")
                                  else resonances[0] + 2e-9)
        assert on_res > 0.5
        assert on_res > 5 * off_res

    def test_temperature_shifts_resonance(self):
        ring = MicroringAddDrop(radius=10e-6, kappa_in=0.1, kappa_drop=0.1)
        res = ring.resonance_wavelengths()[0]
        cold = ring.drop_power(res)
        hot = ring.drop_power(res, OpticalEnvironment(temperature_c=45.0))
        # 20 K shifts the resonance by ~ 20 * 1.86e-4 / ng * lambda >> linewidth
        assert hot < cold

    def test_variation_shifts_resonance(self):
        model = VariationModel()
        a = MicroringAddDrop(label="r", variation=model.sample_die(5, 0))
        b = MicroringAddDrop(label="r", variation=model.sample_die(5, 1))
        res_a = a.resonance_wavelengths()
        res_b = b.resonance_wavelengths()
        assert res_a and res_b
        assert abs(res_a[0] - res_b[0]) > 1e-12
