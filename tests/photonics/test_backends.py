"""Contract suite for the pluggable compute backends.

Every registered backend must satisfy one contract against the numpy
reference: rtol-1e-9 float equivalence on the three hot primitives
(ring scan, bit-slot GEMM, spectral convolution), *identical*
differential-readout comparison bits (responses are quantized before
MACs, so float reassociation must never flip a bit), byte-identical
round transcripts through the full authentication stack (hostile
campaign, sharded executor, net server), and graceful numpy fallback
with a recorded ``degraded_reason`` when the backend is unavailable or
fails its first-use self-check.  Optional-dependency backends skip
cleanly where their toolchain is absent — the CI optional-deps lane
installs numba and runs the whole suite live.
"""

import numpy as np
import pytest

from repro.fleet import Adversary, FaultModel, ReplayAdversary, TamperAdversary
from repro.photonics.backend import (
    ArrayBackend,
    BackendUnavailable,
    NumpyBackend,
    _kernel_power_rows,
    _ring_scan_rows,
    available_backend_names,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.photonics.engine import CompiledMesh, stacked_ring_scan
from repro.photonics.fleet_engine import CompiledFleet
from repro.photonics.mesh import PassiveScrambler
from repro.photonics.variation import VariationModel
from repro.service import AuthService, EngineConfig, FleetConfig

RTOL = 1e-9
ATOL = 1e-12
ALL_BACKENDS = backend_names()


def checked_backend(name: str) -> ArrayBackend:
    """The named backend, self-checked; skips when its toolchain is absent."""
    try:
        backend = get_backend(name)
    except BackendUnavailable as exc:
        pytest.skip(str(exc))
    backend.ensure_ready()
    return backend


def ring_inputs(seed=7, shape=(3, 2, 6, 41), delay=5):
    rng = np.random.default_rng(seed)
    fields = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    coeff_shape = (shape[0], 1, shape[2], 1)
    tau = rng.uniform(0.84, 0.92, coeff_shape).astype(np.complex128)
    rho = 0.99 * np.exp(-1j * rng.uniform(0, 2 * np.pi, coeff_shape))
    return fields, tau, rho, tau * rho, delay


def gemm_inputs(seed=11, fleet=5, channels=8, samples=48, columns=24):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((fleet, channels, samples)),
            rng.standard_normal((fleet, channels, samples)),
            rng.standard_normal((fleet, samples, columns)))


# A registered-but-always-identical backend: exercises the non-numpy
# engine code paths (backend-routed scans/GEMMs, worker-side resolution
# by name) without needing an optional toolchain.
@register_backend
class _MirrorBackend(NumpyBackend):
    name = "mirror-test"


# A registered backend whose ring scan is wrong: exercises the
# fail-self-check-then-fall-back path.
@register_backend
class _BrokenBackend(NumpyBackend):
    name = "broken-test"

    def ring_scan(self, fields, tau, rho, feedback, delay):
        return -super().ring_scan(fields, tau, rho, feedback, delay)


class TestRegistry:
    def test_standard_backends_registered(self):
        assert {"numpy", "numba", "cupy", "torch"} <= set(backend_names())

    def test_numpy_always_available_and_first(self):
        names = available_backend_names()
        assert names[0] == "numpy"
        assert NumpyBackend.available()

    def test_get_backend_is_singleton(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown compute backend"):
            get_backend("no-such-backend")
        with pytest.raises(ValueError, match="unknown compute backend"):
            resolve_backend("no-such-backend")

    def test_duplicate_registration_raises(self):
        class Clash(NumpyBackend):
            name = "numpy"

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Clash)

    def test_numpy_resolves_to_itself(self):
        backend, reason = resolve_backend("numpy")
        assert backend.name == "numpy"
        assert reason is None

    def test_unavailable_backend_falls_back_with_reason(self):
        unavailable = [name for name in backend_names()
                       if name not in available_backend_names()]
        if not unavailable:
            pytest.skip("every registered backend is available here")
        name = unavailable[0]
        backend, reason = resolve_backend(name)
        assert backend is get_backend("numpy")
        assert reason is not None and name in reason

    def test_failing_self_check_falls_back_with_reason(self):
        backend, reason = resolve_backend("broken-test")
        assert backend is get_backend("numpy")
        assert "self-check" in reason


class TestNumpyReference:
    """The restructured reference is bit-identical to the old algorithm."""

    @staticmethod
    def legacy_ring_scan(fields, tau, rho, feedback, delay):
        # The pre-restructure implementation: zero-pad + concatenate,
        # then the same block-major recurrence.
        lead = fields.shape[:-1]
        n_samples = fields.shape[-1]
        blocks = -(-n_samples // delay)
        padding = blocks * delay - n_samples
        x = fields
        if padding:
            x = np.concatenate(
                [x, np.zeros((*lead, padding), dtype=fields.dtype)], axis=-1
            )
        u = tau * x
        u[..., delay:] -= rho * x[..., :-delay]
        w = np.ascontiguousarray(
            np.moveaxis(u.reshape(*lead, blocks, delay), -2, 0)
        )
        for k in range(1, blocks):
            w[k] += feedback * w[k - 1]
        out = np.moveaxis(w, 0, -2).reshape(*lead, blocks * delay)
        return out[..., :n_samples] if padding else out

    @pytest.mark.parametrize("n_samples", [1, 3, 5, 40, 41, 64, 259])
    def test_bit_identical_to_legacy(self, n_samples):
        fields, tau, rho, feedback, delay = ring_inputs(
            shape=(3, 2, 6, n_samples)
        )
        new = stacked_ring_scan(fields, tau, rho, feedback, delay)
        old = self.legacy_ring_scan(fields, tau, rho, feedback, delay)
        assert np.array_equal(new, old)

    def test_does_not_mutate_input(self):
        fields, tau, rho, feedback, delay = ring_inputs()
        before = fields.copy()
        stacked_ring_scan(fields, tau, rho, feedback, delay)
        assert np.array_equal(fields, before)


class TestNumbaKernelBodies:
    """The JIT kernel bodies, run interpreted, match the reference.

    This binds the kernel *logic* in every environment; the compiled
    form is covered by the parametrized contract tests when numba is
    installed (the CI optional-deps lane).
    """

    def test_ring_scan_rows_matches_reference(self):
        fields, tau, rho, feedback, delay = ring_inputs()
        lead = fields.shape[:-1]
        x = np.ascontiguousarray(fields).reshape(-1, fields.shape[-1])
        flat = [np.broadcast_to(c[..., 0], lead).reshape(-1).astype(complex)
                for c in (tau, rho, feedback)]
        out = np.empty_like(x)
        _ring_scan_rows(x, flat[0], flat[1], flat[2], delay, out)
        reference = get_backend("numpy").ring_scan(
            fields, tau, rho, feedback, delay
        )
        np.testing.assert_allclose(out.reshape(fields.shape), reference,
                                   rtol=RTOL, atol=ATOL)

    def test_ring_scan_rows_short_stream(self):
        # n_samples < delay: the recurrence never fires, only the tau
        # drive term survives.
        fields, tau, rho, feedback, __ = ring_inputs(shape=(2, 1, 4, 3))
        x = np.ascontiguousarray(fields).reshape(-1, 3)
        lead = fields.shape[:-1]
        flat = [np.broadcast_to(c[..., 0], lead).reshape(-1).astype(complex)
                for c in (tau, rho, feedback)]
        out = np.empty_like(x)
        _ring_scan_rows(x, flat[0], flat[1], flat[2], 8, out)
        np.testing.assert_allclose(
            out, (flat[0][:, None] * x), rtol=RTOL, atol=ATOL
        )

    def test_kernel_power_rows_matches_reference(self):
        h_real, h_imag, lag = gemm_inputs()
        out = np.empty((h_real.shape[0], h_real.shape[1], lag.shape[2]))
        _kernel_power_rows(h_real, h_imag, lag, out)
        reference = get_backend("numpy").kernel_gemm(h_real, h_imag, lag)
        np.testing.assert_allclose(out, reference, rtol=RTOL, atol=ATOL)
        assert np.array_equal(out[:, :-1] > out[:, 1:],
                              reference[:, :-1] > reference[:, 1:])


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestBackendContract:
    """Every backend against the numpy reference, on its real toolchain."""

    def test_self_check_passes(self, name):
        checked_backend(name)

    @pytest.mark.parametrize("n_samples", [17, 41, 64])
    def test_ring_scan_equivalence(self, name, n_samples):
        backend = checked_backend(name)
        fields, tau, rho, feedback, delay = ring_inputs(
            shape=(3, 2, 6, n_samples)
        )
        out = backend.ring_scan(fields, tau, rho, feedback, delay)
        reference = get_backend("numpy").ring_scan(
            fields, tau, rho, feedback, delay
        )
        np.testing.assert_allclose(out, reference, rtol=RTOL, atol=ATOL)

    def test_kernel_gemm_equivalence_and_bits(self, name):
        backend = checked_backend(name)
        h_real, h_imag, lag = gemm_inputs()
        out = backend.kernel_gemm(h_real, h_imag, lag)
        reference = get_backend("numpy").kernel_gemm(h_real, h_imag, lag)
        np.testing.assert_allclose(out, reference, rtol=RTOL, atol=ATOL)
        # Differential readout: adjacent-channel comparisons quantize to
        # bits, and they must be identical across backends.
        assert np.array_equal(out[:, :-1] > out[:, 1:],
                              reference[:, :-1] > reference[:, 1:])

    def test_fft_convolve_equivalence(self, name):
        backend = checked_backend(name)
        rng = np.random.default_rng(23)
        spectra = np.fft.fft(
            rng.standard_normal((4, 6, 30))
            + 1j * rng.standard_normal((4, 6, 30)), n=80, axis=-1,
        )
        waves = rng.standard_normal((4, 3, 30))
        out = backend.batched_fft_convolve(spectra, waves, 80, 30)
        reference = get_backend("numpy").batched_fft_convolve(
            spectra, waves, 80, 30
        )
        np.testing.assert_allclose(out, reference, rtol=RTOL, atol=ATOL)

    def test_device_round_trip(self, name):
        backend = checked_backend(name)
        array = np.arange(12.0).reshape(3, 4)
        assert np.array_equal(backend.from_device(backend.to_device(array)),
                              array)


@pytest.fixture(scope="module")
def scramblers():
    variation = VariationModel()
    return [
        PassiveScrambler(n_channels=8, n_stages=4, design_seed=5,
                         variation=variation.sample_die(die, 0))
        for die in range(6)
    ]


class TestEngineIntegration:
    """Backend selection threads through the mesh/fleet/shard layers."""

    def test_mesh_backend_route_agrees(self, scramblers):
        reference = CompiledMesh.compile(scramblers[0])
        routed = CompiledMesh.compile(scramblers[0], backend="mirror-test")
        assert routed.compute_backend().name == "mirror-test"
        assert routed.backend_degraded_reason is None
        rng = np.random.default_rng(3)
        fields = (rng.standard_normal((4, 8, 96))
                  + 1j * rng.standard_normal((4, 8, 96)))
        np.testing.assert_allclose(routed.propagate(fields),
                                   reference.propagate(fields),
                                   rtol=RTOL, atol=ATOL)

    def test_fleet_backend_bit_identical(self, scramblers):
        reference = CompiledFleet.compile(scramblers)
        routed = CompiledFleet.compile(scramblers, backend="mirror-test")
        assert routed.compute_backend().name == "mirror-test"
        rng = np.random.default_rng(9)
        waves = rng.standard_normal((6, 2, 64))
        samples = np.arange(4, 64, 8)
        assert np.array_equal(
            routed.response_power_at(waves, samples, launch=0),
            reference.response_power_at(waves, samples, launch=0),
        )
        assert np.array_equal(
            routed.modulated_response(waves, launch=0),
            reference.modulated_response(waves, launch=0),
        )
        fields = (rng.standard_normal((6, 2, 8, 64))
                  + 1j * rng.standard_normal((6, 2, 8, 64)))
        assert np.array_equal(routed.propagate(fields),
                              reference.propagate(fields))

    def test_fleet_unavailable_backend_degrades_bit_identically(
            self, scramblers):
        unavailable = [name for name in backend_names()
                       if name not in available_backend_names()]
        if not unavailable:
            pytest.skip("every registered backend is available here")
        reference = CompiledFleet.compile(scramblers)
        degraded = CompiledFleet.compile(scramblers, backend=unavailable[0])
        assert degraded.compute_backend().name == "numpy"
        assert unavailable[0] in degraded.backend_degraded_reason
        rng = np.random.default_rng(13)
        waves = rng.standard_normal((6, 2, 64))
        samples = np.arange(4, 64, 8)
        assert np.array_equal(
            degraded.response_power_at(waves, samples, launch=0),
            reference.response_power_at(waves, samples, launch=0),
        )

    def test_views_inherit_backend(self, scramblers):
        fleet = CompiledFleet.compile(scramblers, backend="mirror-test")
        assert fleet.shard_view(1, 4).backend_name == "mirror-test"
        assert fleet.mesh(0).backend_name == "mirror-test"

    def test_sharded_executor_resolves_backend_by_name(self, scramblers):
        from repro.photonics.shard import ShardedFleetExecutor

        reference = CompiledFleet.compile(scramblers)
        routed = CompiledFleet.compile(scramblers, backend="mirror-test")
        rng = np.random.default_rng(17)
        waves = rng.standard_normal((6, 2, 64))
        samples = np.arange(4, 64, 8)
        with ShardedFleetExecutor(routed, n_workers=2) as executor:
            sharded = executor.response_power_at(waves, samples, launch=0)
        assert np.array_equal(
            sharded, reference.response_power_at(waves, samples, launch=0)
        )


class TestEngineConfigBackend:
    def test_round_trips_backend(self):
        config = EngineConfig(backend="numba")
        assert EngineConfig.from_state(config.to_state()) == config

    def test_default_state_omissions_tolerated(self):
        assert EngineConfig.from_state({}).backend == "numpy"

    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown compute backend"):
            EngineConfig(backend="no-such-backend")

    def test_backend_requires_stacked(self):
        with pytest.raises(ValueError, match="requires stacked"):
            EngineConfig(stacked=False, backend="numba")

    def test_from_state_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown engine config"):
            EngineConfig.from_state({"stacked": True, "backened": "numba"})

    def test_fleet_config_rejects_unknown_fields(self):
        state = FleetConfig(n_devices=2).to_state()
        state["n_devcies"] = 4
        with pytest.raises(ValueError, match="unknown fleet config"):
            FleetConfig.from_state(state)

    def test_fleet_config_round_trips_backend(self):
        config = FleetConfig(n_devices=2,
                             engine=EngineConfig(backend="mirror-test"))
        assert FleetConfig.from_state(config.to_state()).engine.backend == \
            "mirror-test"


# ---------------------------------------------------------------------------
# End-to-end transcript equality: the acceptance gate
# ---------------------------------------------------------------------------

FLEET = 64
SEED = 2026
N_ROUNDS = 8
FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)


class TranscriptRecorder(Adversary):
    """A passive wiretap: records every in-flight message, mutates none."""

    name = "transcript-recorder"

    def __init__(self):
        self.frames = []

    def mutate(self, messages, captured, rng):
        self.frames.extend(
            (message.device_id, bytes(message.body), bytes(message.tag))
            for message in messages
        )
        return messages


def run_hostile_campaign(backend: str, shard_workers=None):
    """One seeded hostile campaign on the named backend; returns
    ``(frames, stats, snapshot)`` for byte-level comparison."""
    config = FleetConfig(
        n_devices=FLEET, seed=SEED, puf=FAST_PUF,
        engine=EngineConfig(backend=backend, shard_workers=shard_workers),
        fault_model=FaultModel(confirmation_drop=0.2, response_drop=0.05,
                               max_retries=4),
    )
    service = AuthService.provision(config)
    recorder = TranscriptRecorder()
    simulator = service.simulator(adversaries=[
        ReplayAdversary(probability=0.3),
        TamperAdversary(probability=0.02, factor=1.4),
        recorder,
    ])
    stats = simulator.run_campaign(N_ROUNDS)
    snapshot = service.snapshot()
    service.close()
    return recorder.frames, stats.to_json(), snapshot


def assert_campaigns_identical(baseline, other):
    frames, stats, snapshot = baseline
    other_frames, other_stats, other_snapshot = other
    assert frames, "hostile campaign produced no traffic"
    assert frames == other_frames  # bytes, in order
    for volatile in ("elapsed_s", "auths_per_sec"):
        stats = dict(stats)
        other_stats = dict(other_stats)
        stats.pop(volatile, None)
        other_stats.pop(volatile, None)
    assert stats == other_stats
    assert snapshot["arrays"].keys() == other_snapshot["arrays"].keys()
    for key in snapshot["arrays"]:
        assert np.array_equal(snapshot["arrays"][key],
                              other_snapshot["arrays"][key]), key


@pytest.fixture(scope="module")
def numpy_campaign():
    return run_hostile_campaign("numpy")


class TestCampaignTranscriptEquality:
    @pytest.mark.parametrize(
        "name", [name for name in ALL_BACKENDS if name != "numpy"]
    )
    def test_backend_transcripts_bit_identical(self, numpy_campaign, name):
        # Unavailable backends run too: their campaigns must degrade to
        # numpy transparently and still produce identical bytes.
        assert_campaigns_identical(numpy_campaign, run_hostile_campaign(name))

    def test_sharded_transcripts_bit_identical(self, numpy_campaign):
        names = [name for name in available_backend_names()
                 if name != "numpy"] or ["mirror-test"]
        assert_campaigns_identical(
            numpy_campaign,
            run_hostile_campaign(names[0], shard_workers=1),
        )

    def test_hostility_exercised(self, numpy_campaign):
        __, stats, __ = numpy_campaign
        assert stats["dropped_confirmations"] > 0
        assert stats["retries"] > 0
        assert stats["adversary_messages"] > 0
