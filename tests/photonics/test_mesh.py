"""Tests for the passive scrambling architecture (mesh + ring memory)."""

import numpy as np
import pytest

from repro.photonics.mesh import DiscreteTimeRing, MixingLayer, PassiveScrambler
from repro.photonics.variation import OpticalEnvironment, VariationModel


class TestMixingLayer:
    def test_nearly_unitary(self):
        layer = MixingLayer(n_channels=4, layer_index=0, design_seed=3,
                            insertion_loss_db=0.0)
        m = layer.matrix()
        assert np.allclose(m @ m.conj().T, np.eye(4), atol=1e-9)

    def test_insertion_loss(self):
        lossy = MixingLayer(4, 0, 3, insertion_loss_db=3.0).matrix()
        out = lossy @ np.array([1, 0, 0, 0], dtype=complex)
        assert np.sum(np.abs(out) ** 2) == pytest.approx(0.5, rel=0.01)

    def test_alternating_pairs(self):
        even = MixingLayer(5, 0, 3)._pairs()
        odd = MixingLayer(5, 1, 3)._pairs()
        assert even == [(0, 1), (2, 3)]
        assert odd == [(1, 2), (3, 4)]

    def test_die_variation_changes_matrix(self):
        model = VariationModel()
        m0 = MixingLayer(4, 0, 3, variation=model.sample_die(7, 0)).matrix()
        m1 = MixingLayer(4, 0, 3, variation=model.sample_die(7, 1)).matrix()
        assert not np.allclose(m0, m1)


class TestDiscreteTimeRing:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DiscreteTimeRing(tau=1.5)
        with pytest.raises(ValueError):
            DiscreteTimeRing(round_trip_amplitude=0.0)
        with pytest.raises(ValueError):
            DiscreteTimeRing(delay_samples=0)

    def test_all_pass_energy_conservation(self):
        # Lossless all-pass: total output energy equals input energy
        # (over a long enough window for the ring to empty).
        ring = DiscreteTimeRing(tau=0.8, round_trip_amplitude=1.0, delay_samples=2)
        x = np.zeros(4000, dtype=complex)
        x[:16] = 1.0
        y = ring.filter(x)
        assert np.sum(np.abs(y) ** 2) == pytest.approx(np.sum(np.abs(x) ** 2), rel=1e-6)

    def test_memory_mixes_past_into_present(self):
        # Output at sample n depends on inputs at n - D, n - 2D, ...
        ring = DiscreteTimeRing(tau=0.8, round_trip_amplitude=0.95, delay_samples=2)
        impulse = ring.impulse_response(32)
        assert abs(impulse[0]) > 0
        assert abs(impulse[2]) > 0  # first echo
        assert abs(impulse[4]) > 0  # second echo
        assert abs(impulse[1]) == pytest.approx(0.0, abs=1e-12)

    def test_memory_decays(self):
        ring = DiscreteTimeRing(tau=0.8, round_trip_amplitude=0.9, delay_samples=2)
        impulse = np.abs(ring.impulse_response(64))
        assert impulse[2] > impulse[62]

    def test_memory_decay_samples_finite(self):
        ring = DiscreteTimeRing(tau=0.85, round_trip_amplitude=0.96)
        samples = ring.memory_decay_samples()
        assert 0 < samples < 10_000

    def test_linearity(self):
        ring = DiscreteTimeRing()
        x = np.random.default_rng(0).standard_normal(64) + 0j
        assert np.allclose(ring.filter(2 * x), 2 * ring.filter(x))


class TestPassiveScrambler:
    def test_validation(self):
        with pytest.raises(ValueError):
            PassiveScrambler(n_channels=1)
        with pytest.raises(ValueError):
            PassiveScrambler(n_stages=0)

    def test_launch_shape(self):
        scr = PassiveScrambler(n_channels=8)
        fields = scr.launch(np.ones(32, dtype=complex))
        assert fields.shape == (8, 32)
        assert np.all(fields[1:] == 0)

    def test_propagate_spreads_energy(self):
        # Each Clements layer spreads light by one channel, so reaching all
        # 8 channels from input 0 needs at least ~7 stages.
        scr = PassiveScrambler(n_channels=8, n_stages=8, design_seed=11)
        out = scr.propagate(scr.launch(np.ones(64, dtype=complex)))
        energies = np.sum(np.abs(out) ** 2, axis=1)
        # Light injected on channel 0 must reach most channels.
        assert np.count_nonzero(energies > 1e-3 * energies.max()) >= 6

    def test_different_dies_differ(self):
        model = VariationModel()
        stream = np.ones(64, dtype=complex)
        out0 = PassiveScrambler(8, 3, 11, model.sample_die(2, 0)).propagate(
            PassiveScrambler(8, 3, 11).launch(stream))
        out1 = PassiveScrambler(8, 3, 11, model.sample_die(2, 1)).propagate(
            PassiveScrambler(8, 3, 11).launch(stream))
        assert not np.allclose(out0, out1)

    def test_same_die_reproducible(self):
        model = VariationModel()
        die = model.sample_die(2, 0)
        stream = np.ones(64, dtype=complex)
        a = PassiveScrambler(8, 3, 11, die).propagate(PassiveScrambler(8, 3, 11).launch(stream))
        b = PassiveScrambler(8, 3, 11, die).propagate(PassiveScrambler(8, 3, 11).launch(stream))
        assert np.allclose(a, b)

    def test_memory_ablation_changes_output(self):
        stream = np.zeros(64, dtype=complex)
        stream[::8] = 1.0
        with_mem = PassiveScrambler(4, 2, 5, with_memory=True).propagate(
            PassiveScrambler(4, 2, 5).launch(stream))
        without = PassiveScrambler(4, 2, 5, with_memory=False).propagate(
            PassiveScrambler(4, 2, 5).launch(stream))
        assert not np.allclose(with_mem, without)

    def test_static_matrix_matches_memoryless_propagation(self):
        scr = PassiveScrambler(4, 2, 5, with_memory=False)
        stream = np.ones(16, dtype=complex)
        direct = scr.propagate(scr.launch(stream))
        via_matrix = scr.static_matrix() @ scr.launch(stream)
        assert np.allclose(direct, via_matrix)

    def test_temperature_sensitivity(self):
        scr = PassiveScrambler(4, 2, 5, VariationModel().sample_die(1, 0))
        stream = np.ones(32, dtype=complex)
        cold = scr.propagate(scr.launch(stream))
        hot = scr.propagate(scr.launch(stream), env=OpticalEnvironment(temperature_c=45.0))
        assert not np.allclose(cold, hot)
