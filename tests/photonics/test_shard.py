"""Sharded shared-memory executor vs the single-process fleet plane.

The shard layer must be *bit-identical* to ``CompiledFleet``: every
per-die operation in the engine is independent of how the die axis is
tiled, so partitioning the fleet across worker processes (operators
mapped out of shared memory) may change wall clock only, never a single
bit.  Also covered: ragged shard sizes, shard count 1, inline fallback
when no pool can start, and worker crash mid-campaign.
"""

import numpy as np
import pytest

from repro.photonics.shard import (
    ShardLayout,
    ShardedFleetExecutor,
    usable_cores,
)
from repro.puf.photonic_strong import photonic_strong_family

N_DIES = 7
CONFIG = dict(challenge_bits=16, n_stages=4, response_bits=8)


@pytest.fixture(scope="module")
def fleet():
    family = photonic_strong_family(N_DIES, seed=11, **CONFIG)
    return family.stack().compiled_fleet()


@pytest.fixture(scope="module")
def tensors(fleet):
    rng = np.random.default_rng(3)
    n_samples = 80
    waves = rng.normal(size=(N_DIES, 2, n_samples))
    fields = (rng.normal(size=(N_DIES, 2, fleet.n_channels, n_samples))
              + 1j * rng.normal(size=(N_DIES, 2, fleet.n_channels, n_samples)))
    samples = np.array([3, 17, 42, 79])
    return waves, fields, samples


class TestShardLayout:
    def test_balanced_ragged_sizes(self):
        layout = ShardLayout.balanced(10, 3)
        assert layout.slices() == [(0, 4), (4, 7), (7, 10)]
        assert layout.n_shards == 3

    def test_more_shards_than_dies_clamps(self):
        layout = ShardLayout.balanced(2, 8)
        assert layout.n_shards == 2
        assert layout.slices() == [(0, 1), (1, 2)]

    def test_owner(self):
        layout = ShardLayout.balanced(7, 3)
        owners = [layout.owner(die) for die in range(7)]
        assert owners == [0, 0, 0, 1, 1, 2, 2]
        with pytest.raises(ValueError):
            layout.owner(7)

    def test_split_selection_scattered(self):
        layout = ShardLayout.balanced(7, 3)
        groups = layout.split_selection([6, 0, 4, 1])
        # Shard order, positions point back into the selection.
        assert [shard for shard, __, __ in groups] == [0, 1, 2]
        by_shard = {shard: (positions.tolist(), local.tolist())
                    for shard, positions, local in groups}
        assert by_shard[0] == ([1, 3], [0, 1])
        assert by_shard[1] == ([2], [1])
        assert by_shard[2] == ([0], [1])

    def test_empty_shards_are_skipped(self):
        layout = ShardLayout.balanced(7, 3)
        groups = layout.split_selection([0, 1])
        assert [shard for shard, __, __ in groups] == [0]


class TestShardedBitwiseEquivalence:
    """Ragged 3-way sharding of 7 dies: every op, bit for bit."""

    @pytest.fixture(scope="class")
    def executor(self, fleet):
        executor = ShardedFleetExecutor(fleet, n_workers=3)
        yield executor
        executor.close()

    def test_pool_started(self, executor):
        assert executor.active
        assert executor.n_workers == 3
        assert executor.degraded_reason is None

    def test_response_power_bitwise(self, fleet, executor, tensors):
        waves, __, samples = tensors
        reference = fleet.response_power_at(waves, samples, launch=4)
        sharded = executor.response_power_at(waves, samples, launch=4)
        assert np.array_equal(reference, sharded)

    def test_modulated_response_bitwise(self, fleet, executor, tensors):
        waves, __, __ = tensors
        reference = fleet.modulated_response(waves, launch=4)
        sharded = executor.modulated_response(waves, launch=4)
        assert np.array_equal(reference, sharded)

    def test_propagate_bitwise(self, fleet, executor, tensors):
        __, fields, __ = tensors
        reference = fleet.propagate(fields)
        sharded = executor.propagate(fields)
        assert np.array_equal(reference, sharded)

    def test_scattered_subset_bitwise(self, fleet, executor, tensors):
        waves, __, samples = tensors
        selection = [5, 1, 3]
        reference = fleet.response_power_at(waves[:3], samples, 4,
                                            dies=selection)
        sharded = executor.response_power_at(waves[:3], samples, 4,
                                             dies=selection)
        assert np.array_equal(reference, sharded)

    def test_submission_chunks_cover_selection(self, fleet, executor,
                                               tensors):
        waves, __, samples = tensors
        reference = fleet.response_power_at(waves, samples, launch=4)
        submission = executor.submit_response_power(waves, samples, 4)
        covered = np.zeros(N_DIES, dtype=bool)
        for positions, chunk in submission:
            assert np.array_equal(chunk, reference[positions])
            covered[positions] = True
        assert covered.all()

    def test_submission_consumed_once(self, executor, tensors):
        waves, __, samples = tensors
        submission = executor.submit_response_power(waves, samples, 4)
        submission.result()
        with pytest.raises(RuntimeError):
            list(submission)

    def test_repeated_rounds_reuse_scratch(self, fleet, executor, tensors):
        waves, __, samples = tensors
        reference = fleet.response_power_at(waves, samples, launch=4)
        for __ in range(3):
            assert np.array_equal(
                reference, executor.response_power_at(waves, samples, 4)
            )

    def test_growing_rounds_churn_scratch_names(self, fleet, executor):
        """Many distinct block generations: workers must never close a
        block the in-flight command still views (old names age out of
        the per-worker cache instead)."""
        rng = np.random.default_rng(9)
        samples = np.array([3, 17])
        for batch in range(1, 14):  # > worker cache size generations
            waves = rng.normal(size=(N_DIES, batch, 80))
            reference = fleet.response_power_at(waves, samples, launch=4)
            assert np.array_equal(
                reference, executor.response_power_at(waves, samples, 4)
            )
        assert executor.active

    def test_shared_memory_footprint_accounts_kernels(self, executor):
        # Operators + the response kernel warmed by the tests above.
        assert executor.memory_footprint_bytes() > 0


class TestShardCountOne:
    def test_single_worker_bitwise(self, fleet, tensors):
        waves, __, samples = tensors
        reference = fleet.response_power_at(waves, samples, launch=4)
        with ShardedFleetExecutor(fleet, n_workers=1) as executor:
            assert executor.n_workers == 1
            assert np.array_equal(
                reference, executor.response_power_at(waves, samples, 4)
            )


class TestFallback:
    def test_unstartable_pool_degrades_to_inline(self, fleet, tensors):
        waves, __, samples = tensors
        executor = ShardedFleetExecutor(fleet, n_workers=2,
                                        start_method="no-such-method")
        try:
            assert not executor.active
            assert executor.degraded_reason is not None
            reference = fleet.response_power_at(waves, samples, launch=4)
            assert np.array_equal(
                reference, executor.response_power_at(waves, samples, 4)
            )
        finally:
            executor.close()

    def test_worker_crash_mid_campaign(self, fleet, tensors):
        waves, __, samples = tensors
        reference = fleet.response_power_at(waves, samples, launch=4)
        executor = ShardedFleetExecutor(fleet, n_workers=3)
        try:
            assert np.array_equal(
                reference, executor.response_power_at(waves, samples, 4)
            )
            victim = executor._workers[1]
            victim.kill()
            victim.join()
            # The crashed shard is recomputed inline — same bits — and
            # the pool is retired for subsequent rounds.
            assert np.array_equal(
                reference, executor.response_power_at(waves, samples, 4)
            )
            assert not executor.active
            assert "unavailable" in executor.degraded_reason
            assert np.array_equal(
                reference, executor.response_power_at(waves, samples, 4)
            )
        finally:
            executor.close()

    def test_close_is_idempotent(self, fleet):
        executor = ShardedFleetExecutor(fleet, n_workers=2)
        executor.close()
        executor.close()


def test_usable_cores_positive():
    assert usable_cores() >= 1
