"""Tests for the process-variation and environment models."""

import numpy as np
import pytest

from repro.photonics.variation import (
    DieVariation,
    OpticalEnvironment,
    VariationModel,
    environment_sweep,
)


class TestVariationModel:
    def test_same_die_same_state(self):
        model = VariationModel()
        a = model.sample_die(1, 4)
        b = model.sample_die(1, 4)
        assert a.neff_global == b.neff_global
        assert a.neff_offset("x") == b.neff_offset("x")

    def test_different_dies_differ(self):
        model = VariationModel()
        dies = [model.sample_die(1, i) for i in range(10)]
        offsets = {d.neff_global for d in dies}
        assert len(offsets) == 10

    def test_component_offsets_differ_within_die(self):
        die = VariationModel().sample_die(1, 0)
        assert die.neff_offset("ring0") != die.neff_offset("ring1")

    def test_global_component_shared_within_die(self):
        die = VariationModel(sigma_neff_local=0.0).sample_die(1, 0)
        assert die.neff_offset("a") == pytest.approx(die.neff_offset("b"))

    def test_statistics_match_model(self):
        model = VariationModel(sigma_neff_global=1e-4, sigma_neff_local=0.0)
        samples = [model.sample_die(3, i).neff_global for i in range(3000)]
        assert np.std(samples) == pytest.approx(1e-4, rel=0.1)
        assert np.mean(samples) == pytest.approx(0.0, abs=1e-5)

    def test_coupling_factor_positive(self):
        model = VariationModel(sigma_coupling=0.5)  # exaggerated spread
        die = model.sample_die(1, 0)
        factors = [die.coupling_factor(f"c{i}") for i in range(500)]
        assert min(factors) > 0.0

    def test_loss_factor_positive(self):
        die = VariationModel(sigma_loss=0.5).sample_die(1, 0)
        assert min(die.loss_factor(f"l{i}") for i in range(500)) > 0.0


class TestEnvironment:
    def test_delta_t(self):
        assert OpticalEnvironment(temperature_c=35.0).delta_t == pytest.approx(10.0)

    def test_defaults(self):
        env = OpticalEnvironment()
        assert env.delta_t == 0.0
        assert env.detection_noise_scale == 1.0

    def test_sweep(self):
        envs = environment_sweep([0.0, 25.0, 50.0])
        assert [e.temperature_c for e in envs] == [0.0, 25.0, 50.0]
