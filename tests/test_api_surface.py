"""Public-API surface snapshot.

The exported names of ``repro``, ``repro.fleet.storage``,
``repro.photonics.backend``, ``repro.service``, ``repro.service.net``,
and ``repro.service.ha`` — plus the :class:`FailureKind` taxonomy —
are pinned against the checked-in manifest ``tests/api_surface.json``.
Any drift — a new export, a removal, a rename — fails here until the
manifest is updated in the same change, so surface changes are always
explicit and reviewable (CI runs this test in its own blocking step).

To accept an intentional change, regenerate the manifest:

    PYTHONPATH=src python -c "
    import json
    from tests.test_api_surface import current_surface
    print(json.dumps(current_surface(), indent=2, sort_keys=True))
    " > tests/api_surface.json
"""

import json
from pathlib import Path

import pytest

import repro
import repro.fleet.storage
import repro.obs
import repro.photonics.backend
import repro.service
import repro.service.ha
import repro.service.net
from repro.protocols.mutual_auth import FailureKind

MANIFEST_PATH = Path(__file__).parent / "api_surface.json"

#: Every module whose ``__all__`` is a supported surface.
SURFACE_MODULES = {
    "repro": repro,
    "repro.fleet.storage": repro.fleet.storage,
    "repro.obs": repro.obs,
    "repro.photonics.backend": repro.photonics.backend,
    "repro.service": repro.service,
    "repro.service.ha": repro.service.ha,
    "repro.service.net": repro.service.net,
}


def current_surface() -> dict:
    surface = {name: sorted(module.__all__)
               for name, module in SURFACE_MODULES.items()}
    surface["repro.protocols.FailureKind"] = sorted(
        kind.value for kind in FailureKind)
    return surface


def load_manifest() -> dict:
    with open(MANIFEST_PATH) as fh:
        return json.load(fh)


class TestSurfaceSnapshot:
    @pytest.mark.parametrize("module_name", sorted(SURFACE_MODULES))
    def test_exports_match_manifest(self, module_name):
        manifest = load_manifest()
        module = SURFACE_MODULES[module_name]
        assert sorted(module.__all__) == manifest[module_name], (
            f"{module_name}.__all__ drifted from tests/api_surface.json — "
            "update the manifest if the change is intentional"
        )

    def test_failure_kinds_match_manifest(self):
        # The failure taxonomy is wire format: clients aggregate and
        # retry by these strings, so members only ever get *added*.
        manifest = load_manifest()
        assert sorted(kind.value for kind in FailureKind) == \
            manifest["repro.protocols.FailureKind"], (
                "FailureKind drifted from tests/api_surface.json — "
                "update the manifest if the change is intentional"
            )

    def test_manifest_covers_exactly_the_pinned_surfaces(self):
        manifest = load_manifest()
        assert sorted(manifest) == sorted(current_surface())

    @pytest.mark.parametrize("module_name", sorted(SURFACE_MODULES))
    def test_every_export_resolves(self, module_name):
        module = SURFACE_MODULES[module_name]
        for name in module.__all__:
            assert getattr(module, name, None) is not None, name

    @pytest.mark.parametrize("module_name", sorted(SURFACE_MODULES))
    def test_no_duplicate_exports(self, module_name):
        module = SURFACE_MODULES[module_name]
        assert len(set(module.__all__)) == len(module.__all__)


class TestSupportedEntryPoints:
    def test_facade_verbs_exist(self):
        # The redesign's contract: the facade carries the full verb set.
        for verb in ("provision", "enroll", "revoke", "authenticate",
                     "authenticate_batch", "submit", "poll", "flush",
                     "spot_check", "snapshot", "restore", "save", "load",
                     "open_round_wire", "verify_round_wire", "simulator",
                     "close"):
            assert callable(getattr(repro.service.AuthService, verb)), verb

    def test_client_mirrors_facade_verbs(self):
        # The net redesign's contract: the client SDK speaks the facade
        # verb set, verb for verb, across the socket.
        for verb in ("enroll", "revoke", "authenticate",
                     "authenticate_batch", "submit", "poll", "flush",
                     "spot_check", "open_round_wire", "verify_round_wire"):
            assert callable(
                getattr(repro.service.net.AuthClient, verb)), verb

    def test_ha_client_mirrors_retryable_verbs(self):
        # The HA redesign's contract: everything a single-endpoint
        # client can do safely under retry, the failover client does
        # across endpoints.
        for verb in ("enroll", "revoke", "authenticate", "flush", "poll",
                     "spot_check"):
            assert callable(
                getattr(repro.service.ha.HAAuthClient, verb)), verb

    def test_network_transient_kinds_are_valid_taxonomy(self):
        from repro.service.policy import NETWORK_TRANSIENT_KINDS
        taxonomy = {kind.value for kind in FailureKind}
        assert NETWORK_TRANSIENT_KINDS <= taxonomy

    def test_deprecated_shims_still_importable(self):
        # Importing must not warn (calling does) — pinned so the shims
        # survive until their announced removal.
        from repro.fleet import (  # noqa: F401
            provision_fleet,
            respond_fleet,
            respond_fleet_staged,
        )
