"""Public-API surface snapshot.

The exported names of ``repro``, ``repro.fleet.storage``,
``repro.photonics.backend``, ``repro.service``, and
``repro.service.net`` are pinned against the checked-in manifest
``tests/api_surface.json``.  Any drift — a new export, a removal, a
rename — fails here until the manifest is updated in the same change,
so surface changes are always explicit and reviewable (CI runs this
test in its own blocking step).

To accept an intentional change, regenerate the manifest:

    PYTHONPATH=src python -c "
    import json, repro, repro.service, repro.service.net
    import repro.fleet.storage, repro.photonics.backend
    print(json.dumps({'repro': sorted(repro.__all__),
                      'repro.fleet.storage':
                          sorted(repro.fleet.storage.__all__),
                      'repro.photonics.backend':
                          sorted(repro.photonics.backend.__all__),
                      'repro.service': sorted(repro.service.__all__),
                      'repro.service.net':
                          sorted(repro.service.net.__all__)},
                     indent=2, sort_keys=True))" > tests/api_surface.json
"""

import json
from pathlib import Path

import repro
import repro.fleet.storage
import repro.photonics.backend
import repro.service
import repro.service.net

MANIFEST_PATH = Path(__file__).parent / "api_surface.json"


def load_manifest() -> dict:
    with open(MANIFEST_PATH) as fh:
        return json.load(fh)


class TestSurfaceSnapshot:
    def test_repro_exports_match_manifest(self):
        manifest = load_manifest()
        assert sorted(repro.__all__) == manifest["repro"], (
            "repro.__all__ drifted from tests/api_surface.json — "
            "update the manifest if the change is intentional"
        )

    def test_service_exports_match_manifest(self):
        manifest = load_manifest()
        assert sorted(repro.service.__all__) == manifest["repro.service"], (
            "repro.service.__all__ drifted from tests/api_surface.json — "
            "update the manifest if the change is intentional"
        )

    def test_storage_exports_match_manifest(self):
        manifest = load_manifest()
        assert sorted(repro.fleet.storage.__all__) == \
            manifest["repro.fleet.storage"], (
                "repro.fleet.storage.__all__ drifted from "
                "tests/api_surface.json — update the manifest if the "
                "change is intentional"
            )

    def test_backend_exports_match_manifest(self):
        manifest = load_manifest()
        assert sorted(repro.photonics.backend.__all__) == \
            manifest["repro.photonics.backend"], (
                "repro.photonics.backend.__all__ drifted from "
                "tests/api_surface.json — update the manifest if the "
                "change is intentional"
            )

    def test_net_exports_match_manifest(self):
        manifest = load_manifest()
        assert sorted(repro.service.net.__all__) == \
            manifest["repro.service.net"], (
                "repro.service.net.__all__ drifted from "
                "tests/api_surface.json — update the manifest if the "
                "change is intentional"
            )

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
        for name in repro.fleet.storage.__all__:
            assert getattr(repro.fleet.storage, name, None) is not None, name
        for name in repro.photonics.backend.__all__:
            assert getattr(repro.photonics.backend, name, None) is not None, \
                name
        for name in repro.service.__all__:
            assert getattr(repro.service, name, None) is not None, name
        for name in repro.service.net.__all__:
            assert getattr(repro.service.net, name, None) is not None, name

    def test_no_duplicate_exports(self):
        assert len(set(repro.__all__)) == len(repro.__all__)
        assert len(set(repro.fleet.storage.__all__)) == \
            len(repro.fleet.storage.__all__)
        assert len(set(repro.photonics.backend.__all__)) == \
            len(repro.photonics.backend.__all__)
        assert len(set(repro.service.__all__)) == len(repro.service.__all__)
        assert len(set(repro.service.net.__all__)) == \
            len(repro.service.net.__all__)


class TestSupportedEntryPoints:
    def test_facade_verbs_exist(self):
        # The redesign's contract: the facade carries the full verb set.
        for verb in ("provision", "enroll", "revoke", "authenticate",
                     "authenticate_batch", "submit", "poll", "flush",
                     "spot_check", "snapshot", "restore", "save", "load",
                     "open_round_wire", "verify_round_wire", "simulator",
                     "close"):
            assert callable(getattr(repro.service.AuthService, verb)), verb

    def test_client_mirrors_facade_verbs(self):
        # The net redesign's contract: the client SDK speaks the facade
        # verb set, verb for verb, across the socket.
        for verb in ("enroll", "revoke", "authenticate",
                     "authenticate_batch", "submit", "poll", "flush",
                     "spot_check", "open_round_wire", "verify_round_wire"):
            assert callable(
                getattr(repro.service.net.AuthClient, verb)), verb

    def test_deprecated_shims_still_importable(self):
        # Importing must not warn (calling does) — pinned so the shims
        # survive until their announced removal.
        from repro.fleet import (  # noqa: F401
            provision_fleet,
            respond_fleet,
            respond_fleet_staged,
        )
