"""Tests for the NN encryption service (Table I) and the EKE-based AKA."""

import numpy as np
import pytest

from repro.accelerator.network import LayerConfig, NetworkConfig
from repro.protocols.aka import AkaError, establish_session
from repro.protocols.nn_service import (
    KeyVault,
    NetworkOwner,
    SecureAccelerator,
    ServiceError,
)
from repro.system.soc import DeviceSoC, SoCConfig


@pytest.fixture(scope="module")
def service():
    soc = DeviceSoC(SoCConfig(seed=31, memory_size=8 * 1024))
    vault = KeyVault(soc, seed=31)
    return soc, vault, SecureAccelerator(soc, vault), NetworkOwner(vault)


def tiny_network(seed=0):
    rng = np.random.default_rng(seed)
    return NetworkConfig(layers=[
        LayerConfig(rng.normal(size=(4, 3)), rng.normal(size=4), "relu"),
        LayerConfig(rng.normal(size=(2, 4)), rng.normal(size=2), "linear"),
    ])


class TestKeyVault:
    def test_rederivation_from_noisy_measurement(self, service):
        __, vault, *_ = service
        assert vault.rederive_key(measurement=5)

    def test_helper_data_public(self, service):
        __, vault, *_ = service
        assert vault.helper.offset.size == vault.extractor.response_bits

    def test_no_key_getter(self, service):
        __, vault, *_ = service
        assert not hasattr(vault, "master_key")
        assert not hasattr(vault, "get_key")


class TestTableI:
    def test_load_and_execute(self, service):
        __, __, accelerator, owner = service
        accelerator.load_network(owner.seal_network(tiny_network(1)))
        sealed_output = accelerator.execute_network(
            owner.seal_input(np.array([0.1, 0.2, 0.3]))
        )
        output = owner.open_output(sealed_output)
        assert output.shape == (2,)

    def test_execute_before_load_rejected(self):
        soc = DeviceSoC(SoCConfig(seed=32, memory_size=8 * 1024))
        vault = KeyVault(soc, seed=32)
        accelerator = SecureAccelerator(soc, vault)
        owner = NetworkOwner(vault)
        with pytest.raises(ServiceError):
            accelerator.execute_network(owner.seal_input(np.zeros(3)))

    def test_tampered_network_rejected(self, service):
        __, __, accelerator, owner = service
        sealed = bytearray(owner.seal_network(tiny_network(2)))
        sealed[25] ^= 1
        with pytest.raises(ServiceError):
            accelerator.load_network(bytes(sealed))

    def test_tampered_input_rejected(self, service):
        __, __, accelerator, owner = service
        accelerator.load_network(owner.seal_network(tiny_network(3)))
        sealed = bytearray(owner.seal_input(np.array([0.1, 0.2, 0.3])))
        sealed[-1] ^= 1
        with pytest.raises(ServiceError):
            accelerator.execute_network(bytes(sealed))

    def test_plaintext_never_software_visible(self, service):
        # The Sec. III-C confidentiality property: neither the network
        # bytes nor the input/output plaintext ever appear in anything
        # handed to the software layer.
        __, __, accelerator, owner = service
        config = tiny_network(4)
        x = np.array([0.4, -0.3, 0.9])
        accelerator.load_network(owner.seal_network(config))
        sealed_output = accelerator.execute_network(owner.seal_input(x))
        output = owner.open_output(sealed_output)
        plaintexts = [config.serialize(), x.tobytes(), output.tobytes()]
        for visible in accelerator.software_visible_log:
            for secret in plaintexts:
                assert secret not in visible

    def test_outputs_differ_across_inputs(self, service):
        __, __, accelerator, owner = service
        accelerator.load_network(owner.seal_network(tiny_network(5)))
        out_a = owner.open_output(accelerator.execute_network(
            owner.seal_input(np.array([1.0, 0.0, 0.0]))))
        out_b = owner.open_output(accelerator.execute_network(
            owner.seal_input(np.array([0.0, 1.0, 0.0]))))
        assert not np.allclose(out_a, out_b)

    def test_service_latency_recorded(self, service):
        __, __, accelerator, owner = service
        accelerator.load_network(owner.seal_network(tiny_network(6)))
        accelerator.execute_network(owner.seal_input(np.zeros(3)))
        assert accelerator.load_time_s > 0
        assert accelerator.execute_time_s > 0


class TestAka:
    def test_session_established(self):
        response = np.random.default_rng(1).integers(0, 2, 32, dtype=np.uint8)
        session = establish_session(response, seed=1)
        assert len(session.session_key) == 32
        assert session.messages == 3
        assert session.modexp_total == 4

    def test_wrong_crp_fails(self):
        rng = np.random.default_rng(2)
        good = rng.integers(0, 2, 32, dtype=np.uint8)
        bad = 1 - good
        with pytest.raises(AkaError):
            establish_session(good, seed=2, device_response=bad)

    def test_forward_secrecy(self):
        response = np.random.default_rng(3).integers(0, 2, 32, dtype=np.uint8)
        a = establish_session(response, seed=3, session_id=0)
        b = establish_session(response, seed=3, session_id=1)
        assert a.session_key != b.session_key

    def test_device_cost_dominated_by_modexp(self):
        response = np.random.default_rng(4).integers(0, 2, 32, dtype=np.uint8)
        soc = DeviceSoC(SoCConfig(seed=33, memory_size=8 * 1024))
        session = establish_session(response, soc, seed=4)
        from repro.protocols.aka import MODEXP_SECONDS_RV32

        assert session.device_time_s >= 2 * MODEXP_SECONDS_RV32
