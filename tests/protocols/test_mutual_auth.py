"""Tests for the Fig. 4 mutual authentication protocol."""

import numpy as np
import pytest

from repro.protocols.mutual_auth import (
    AuthenticationFailure,
    CRPDatabaseVerifier,
    derive_challenge,
    derive_challenge_batch,
    mask_integrity,
    provision,
    run_session,
    unmask_clock_count,
)
from repro.system.channel import Channel
from repro.system.soc import DeviceSoC, SoCConfig


@pytest.fixture()
def parties():
    soc = DeviceSoC(SoCConfig(seed=11, memory_size=8 * 1024))
    return provision(soc, seed=11)


class TestDeriveChallenge:
    def test_deterministic(self):
        r = np.ones(32, dtype=np.uint8)
        assert np.array_equal(derive_challenge(r, 64), derive_challenge(r, 64))

    def test_depends_on_response(self):
        a = derive_challenge(np.zeros(32, dtype=np.uint8), 64)
        b = derive_challenge(np.ones(32, dtype=np.uint8), 64)
        assert not np.array_equal(a, b)

    def test_width(self):
        assert derive_challenge(np.ones(32, dtype=np.uint8), 77).size == 77


class TestHappyPath:
    def test_single_session(self, parties):
        device, verifier = parties
        record = run_session(device, verifier)
        assert record.success, record.verifier_checks

    def test_crp_rolls_forward(self, parties):
        device, verifier = parties
        before = device.current_response.copy()
        run_session(device, verifier)
        assert not np.array_equal(device.current_response, before)
        assert np.array_equal(device.current_response, verifier.current_response)

    def test_many_consecutive_sessions(self, parties):
        device, verifier = parties
        for index in range(10):
            record = run_session(device, verifier)
            assert record.success, f"session {index}: {record.verifier_checks}"

    def test_constant_verifier_storage(self, parties):
        # The scalability claim: storage does not grow with session count.
        device, verifier = parties
        initial = verifier.storage_bytes
        for __ in range(5):
            run_session(device, verifier)
        assert verifier.storage_bytes == initial

    def test_message_sizes_recorded(self, parties):
        device, verifier = parties
        record = run_session(device, verifier)
        assert record.bytes_device_to_verifier > 0
        assert record.bytes_verifier_to_device > 0


class TestIntegrityEvidence:
    def test_tampered_clock_count_rejected(self, parties):
        device, verifier = parties
        record = run_session(device, verifier, tamper_factor=1.5)
        assert not record.success
        assert "clock count" in record.verifier_checks

    def test_modified_firmware_rejected(self, parties):
        device, verifier = parties
        device.soc.memory.infect(address=0, length=256)
        record = run_session(device, verifier)
        assert not record.success
        assert "firmware" in record.verifier_checks


class TestChannelAdversary:
    def test_tampering_detected(self, parties):
        device, verifier = parties
        channel = Channel()

        def flip(message: bytes) -> bytes:
            if len(message) < 40:
                return message  # leave the nonce alone
            corrupted = bytearray(message)
            corrupted[20] ^= 1
            return bytes(corrupted)

        channel.tamper = flip
        record = run_session(device, verifier, channel=channel)
        assert not record.success

    def test_eavesdropper_never_sees_plain_response(self, parties):
        # CRPs are never exchanged in clear text (Sec. III-A): the current
        # and new responses must not appear in any message.
        from repro.protocols.mutual_auth import _pad_bits

        device, verifier = parties
        seen = []
        channel = Channel()
        channel.eavesdropper = seen.append
        before = _pad_bits(device.current_response)
        record = run_session(device, verifier, channel=channel)
        after = _pad_bits(device.current_response)
        assert record.success
        for message in seen:
            assert before not in message
            assert after not in message


class TestVerifierStateMachine:
    def test_finalize_requires_pending(self, parties):
        __, verifier = parties
        with pytest.raises(AuthenticationFailure):
            verifier.finalize()

    def test_seen_tags_pruned_on_finalize(self, parties):
        # The replay cache must stay flat across sessions: once the CRP
        # rolls, old tags fail the MAC check anyway.
        device, verifier = parties
        for __ in range(5):
            record = run_session(device, verifier)
            assert record.success
            assert len(verifier._seen_tags) == 0

    def test_replay_after_finalize_still_rejected(self, parties):
        device, verifier = parties
        nonce = verifier.new_nonce()
        message = device.handle_request(nonce)
        confirmation = verifier.process_response(
            message, nonce, device.soc.strong_puf.challenge_bits)
        device.verify_confirmation(confirmation, nonce)
        verifier.finalize()
        # Tag pruned, but the rolled CRP rejects the stale message.
        with pytest.raises(AuthenticationFailure) as failure:
            verifier.process_response(
                message, nonce, device.soc.strong_puf.challenge_bits)
        assert "MAC" in str(failure.value)

    def test_malformed_but_authentic_body_rejected_cleanly(self, parties):
        # Buggy firmware MACs a broken frame: must fail as a protocol
        # error, never escape as a raw ValueError.
        from repro.crypto.mac import mac as compute_mac
        from repro.protocols.mutual_auth import FailureKind, _pad_bits
        from repro.utils.serialization import encode_fields

        device, verifier = parties
        nonce = verifier.new_nonce()
        body = b"not-length-prefixed"
        tag = compute_mac(body, _pad_bits(device.current_response))
        with pytest.raises(AuthenticationFailure) as failure:
            verifier.process_response(
                encode_fields([body, tag]), nonce,
                device.soc.strong_puf.challenge_bits)
        assert failure.value.kind is FailureKind.MALFORMED

    def test_truncated_masked_field_rejected_cleanly(self, parties):
        from repro.crypto.mac import mac as compute_mac
        from repro.protocols.mutual_auth import (
            FailureKind,
            _pad_bits,
            mask_integrity,
        )
        from repro.utils.serialization import encode_fields

        device, verifier = parties
        nonce = verifier.new_nonce()
        firmware_hash, __ = device.soc.firmware_hash()
        body = encode_fields([
            (0).to_bytes(4, "big"),
            b"\x00",  # far fewer masked bits than response_bits
            mask_integrity(firmware_hash, device.soc.measure_clock_count()),
            nonce,
        ])
        tag = compute_mac(body, _pad_bits(device.current_response))
        with pytest.raises(AuthenticationFailure) as failure:
            verifier.process_response(
                encode_fields([body, tag]), nonce,
                device.soc.strong_puf.challenge_bits)
        assert failure.value.kind is FailureKind.MALFORMED
        assert "masked response field" in str(failure.value)

    def test_device_confirmation_requires_pending(self, parties):
        device, __ = parties
        with pytest.raises(AuthenticationFailure):
            device.verify_confirmation(b"\x00" * 32, b"nonce")

    def test_malformed_message_rejected(self, parties):
        __, verifier = parties
        with pytest.raises(AuthenticationFailure):
            verifier.process_response(b"garbage", b"nonce", 64)


class TestCRPDatabaseBaseline:
    def test_authentication_and_exhaustion(self):
        soc = DeviceSoC(SoCConfig(seed=12, memory_size=8 * 1024))
        database = CRPDatabaseVerifier(soc, n_crps=5, seed=12)
        assert database.remaining == 5
        assert database.authenticate(soc)
        assert database.remaining == 4

    def test_storage_grows_with_database(self):
        soc = DeviceSoC(SoCConfig(seed=13, memory_size=8 * 1024))
        small = CRPDatabaseVerifier(soc, n_crps=2, seed=13)
        soc2 = DeviceSoC(SoCConfig(seed=13, memory_size=8 * 1024))
        large = CRPDatabaseVerifier(soc2, n_crps=8, seed=13)
        assert large.storage_bytes == 4 * small.storage_bytes

    def test_exhaustion_raises(self):
        soc = DeviceSoC(SoCConfig(seed=14, memory_size=8 * 1024))
        database = CRPDatabaseVerifier(soc, n_crps=1, seed=14)
        database.authenticate(soc)
        with pytest.raises(AuthenticationFailure):
            database.authenticate(soc)

    def test_counterfeit_device_rejected(self):
        soc = DeviceSoC(SoCConfig(seed=15, memory_size=8 * 1024))
        database = CRPDatabaseVerifier(soc, n_crps=3, seed=15)
        counterfeit = DeviceSoC(SoCConfig(seed=15, die_index=9,
                                          memory_size=8 * 1024))
        assert not database.authenticate(counterfeit)


class TestBatchedChallengeDerivation:
    def test_matches_per_row_derivation(self):
        rng = np.random.default_rng(17)
        responses = rng.integers(0, 2, size=(9, 21), dtype=np.uint8)
        batched = derive_challenge_batch(responses, 40)
        for row in range(9):
            assert np.array_equal(batched[row],
                                  derive_challenge(responses[row], 40))

    def test_single_row_input(self):
        response = np.ones(16, dtype=np.uint8)
        batched = derive_challenge_batch(response, 24)
        assert batched.shape == (1, 24)
        assert np.array_equal(batched[0], derive_challenge(response, 24))


class TestIntegrityMaskHelpers:
    def test_mask_round_trips_through_unmask(self):
        firmware = bytes(range(32))
        for clock in (0, 1, 99_999, 2**63):
            masked = mask_integrity(firmware, clock)
            assert len(masked) == 32
            assert unmask_clock_count(masked, firmware) == clock

    def test_wrong_hash_detected(self):
        firmware = bytes(range(32))
        masked = mask_integrity(firmware, 100_000)
        with pytest.raises(AuthenticationFailure):
            unmask_clock_count(masked, bytes(32))

    def test_length_mismatch_detected(self):
        with pytest.raises(AuthenticationFailure):
            unmask_clock_count(b"\x00" * 16, bytes(range(32)))


class TestConfirmationMacBatch:
    """Batched confirmation framing vs the scalar MAC construction."""

    def test_rows_match_scalar_macs(self):
        import numpy as np

        from repro.crypto.mac import mac as compute_mac
        from repro.protocols.mutual_auth import (
            _pad_bits,
            confirmation_mac_batch,
        )
        from repro.utils.serialization import encode_fields

        rng = np.random.default_rng(5)
        challenges = rng.integers(0, 2, size=(6, 32), dtype=np.uint8)
        responses = rng.integers(0, 2, size=(6, 16), dtype=np.uint8)
        nonces = [bytes([i]) * 16 for i in range(6)]
        batch = confirmation_mac_batch(challenges, nonces, responses)
        for row in range(6):
            expected = compute_mac(
                encode_fields([_pad_bits(challenges[row]), nonces[row]]),
                _pad_bits(responses[row]),
            )
            assert batch[row] == expected

    def test_length_mismatch_rejected(self):
        import numpy as np
        import pytest

        from repro.protocols.mutual_auth import confirmation_mac_batch

        with pytest.raises(ValueError):
            confirmation_mac_batch(np.zeros((2, 8), dtype=np.uint8),
                                   [b"n" * 16], np.zeros((2, 8),
                                                         dtype=np.uint8))
