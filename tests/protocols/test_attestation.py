"""Tests for PUF-based software attestation (Sec. III-B)."""

import pytest

from repro.protocols.attestation import (
    AttestationDevice,
    AttestationVerifier,
    _walk_order,
)
from repro.system.memory import RelocatingCompromisedMemory
from repro.system.soc import DeviceSoC, SoCConfig
import numpy as np


@pytest.fixture()
def setup():
    soc = DeviceSoC(SoCConfig(seed=21, memory_size=8 * 1024))
    verifier = AttestationVerifier(
        soc.memory.image(), soc.strong_puf,
        chunk_size=soc.memory.chunk_size, soc_model=soc,
    )
    return soc, verifier


class TestWalk:
    def test_walk_is_permutation(self):
        order = _walk_order(np.ones(32, dtype=np.uint8), 123, 64)
        assert sorted(order) == list(range(64))

    def test_walk_depends_on_timestamp(self):
        r = np.ones(32, dtype=np.uint8)
        assert _walk_order(r, 1, 64) != _walk_order(r, 2, 64)

    def test_walk_depends_on_response(self):
        a = _walk_order(np.zeros(32, dtype=np.uint8), 1, 64)
        b = _walk_order(np.ones(32, dtype=np.uint8), 1, 64)
        assert a != b


class TestHonestDevice:
    def test_attestation_accepted(self, setup):
        soc, verifier = setup
        request = verifier.new_request(timestamp=100)
        report = AttestationDevice(soc).attest(request)
        verdict = verifier.verify(request, report)
        assert verdict.accepted
        assert verdict.hash_ok and verdict.time_ok

    def test_requests_are_fresh(self, setup):
        __, verifier = setup
        a = verifier.new_request(timestamp=1)
        b = verifier.new_request(timestamp=1)
        assert not np.array_equal(a.challenge, b.challenge)

    def test_different_timestamps_different_hashes(self, setup):
        soc, verifier = setup
        device = AttestationDevice(soc)
        request_a = verifier.new_request(timestamp=10)
        request_b = verifier.new_request(timestamp=20)
        assert device.attest(request_a).final_hash != \
            device.attest(request_b).final_hash

    def test_expected_time_positive(self, setup):
        soc, verifier = setup
        request = verifier.new_request(timestamp=5)
        __, expected_time = verifier.expected(request)
        assert expected_time > 0

    def test_puf_never_stalls_the_walk(self, setup):
        # The >= 5 Gb/s claim: per-step PUF time below per-step hash time.
        soc, __ = setup
        puf_time = soc.strong_puf.interrogation_time_s()
        hash_time = soc.cpu.hash_time(soc.memory.chunk_size + 64)
        assert puf_time < hash_time


class TestCompromisedDevice:
    def test_naive_infection_caught_by_hash(self, setup):
        soc, verifier = setup
        soc.memory.infect(address=0, length=1024)
        request = verifier.new_request(timestamp=200)
        report = AttestationDevice(soc).attest(request)
        verdict = verifier.verify(request, report)
        assert not verdict.accepted
        assert not verdict.hash_ok

    def test_relocation_caught_by_timing(self, setup):
        soc, verifier = setup
        compromised = RelocatingCompromisedMemory(
            soc.memory.image(), chunk_size=soc.memory.chunk_size,
            infected_chunks=set(range(8)),
        )
        request = verifier.new_request(timestamp=300)
        report = AttestationDevice(soc, memory=compromised).attest(request)
        verdict = verifier.verify(request, report)
        assert verdict.hash_ok  # the copy fools the hash...
        assert not verdict.time_ok  # ...but not the clock
        assert not verdict.accepted

    def test_wrong_puf_model_rejects(self, setup):
        # A counterfeit device (different die) cannot produce the chained
        # hashes the verifier's PUF model expects.
        soc, verifier = setup
        counterfeit = DeviceSoC(SoCConfig(seed=21, die_index=5,
                                          memory_size=8 * 1024))
        request = verifier.new_request(timestamp=400)
        report = AttestationDevice(counterfeit).attest(request)
        verdict = verifier.verify(request, report)
        assert not verdict.hash_ok

    def test_image_size_validation(self):
        soc = DeviceSoC(SoCConfig(seed=22, memory_size=8 * 1024))
        with pytest.raises(ValueError):
            AttestationVerifier(soc.memory.image()[:-3], soc.strong_puf)
